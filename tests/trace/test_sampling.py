"""Sampling policies and the sampled tracer (production tracing)."""

import pytest

from repro.ids import CallStack
from repro.runtime import Cluster, OpKind, sleep
from repro.runtime.ops import MEM_KINDS, OpEvent
from repro.trace import (
    Composite,
    FullScope,
    HashRate,
    KeepAll,
    PerEpochBudget,
    PerLocationBudget,
    Reservoir,
    Trace,
    Tracer,
    build_sampler,
    parse_policy,
)


def _mem(seq, loc="x", kind=OpKind.MEM_WRITE, tid=0):
    return OpEvent(
        seq=seq,
        kind=kind,
        obj_id=loc,
        node="n",
        tid=tid,
        thread_name=f"t{tid}",
        segment=tid,
        callstack=CallStack(),
        location=(1, loc),
    )


def _lock(seq, tid=0):
    return OpEvent(
        seq=seq,
        kind=OpKind.LOCK_ACQUIRE,
        obj_id="l",
        node="n",
        tid=tid,
        thread_name=f"t{tid}",
        segment=tid,
        callstack=CallStack(),
    )


# -- policy unit behavior -----------------------------------------------------


def test_hash_rate_deterministic_and_seed_sensitive():
    events = [_mem(i, loc=f"x{i % 7}") for i in range(200)]
    first = [HashRate(0.3, seed=1).admit(e) for e in events]
    second = [HashRate(0.3, seed=1).admit(e) for e in events]
    other_seed = [HashRate(0.3, seed=2).admit(e) for e in events]
    assert first == second
    assert first != other_seed
    # Rough proportionality: keeps a minority, not none.
    assert 0 < sum(first) < len(events)


def test_hash_rate_bounds():
    with pytest.raises(ValueError):
        HashRate(1.5)
    with pytest.raises(ValueError):
        HashRate(-0.1)
    assert not any(HashRate(0.0).admit(_mem(i)) for i in range(50))


def test_per_location_budget_keeps_prefix_per_location():
    policy = PerLocationBudget(2)
    hot = [policy.admit(_mem(i, loc="hot")) for i in range(5)]
    cold = [policy.admit(_mem(100 + i, loc="cold")) for i in range(2)]
    assert hot == [True, True, False, False, False]
    assert cold == [True, True]


def test_per_epoch_budget_resets_each_epoch():
    policy = PerEpochBudget(budget=2, epoch_records=4)
    decisions = [policy.admit(_mem(i)) for i in range(8)]
    assert decisions == [True, True, False, False, True, True, False, False]


def test_reservoir_caps_sample_and_reports_evictions():
    policy = Reservoir(capacity=2, seed=0)
    kept = set()
    for i in range(20):
        if policy.admit(_mem(i, loc="hot")):
            kept.add(i)
        for seq in policy.pop_evictions():
            kept.remove(seq)
    assert len(kept) == 2
    # Replacement means the sample is not simply the first two.
    assert kept != {0, 1}
    # Determinism: the same run again picks the same sample.
    again = set()
    policy2 = Reservoir(capacity=2, seed=0)
    for i in range(20):
        if policy2.admit(_mem(i, loc="hot")):
            again.add(i)
        for seq in policy2.pop_evictions():
            again.remove(seq)
    assert again == kept


def test_composite_is_union_and_pins_against_eviction():
    # budget admits seqs 0-1; the reservoir would later evict its early
    # picks, but those admitted by the budget are pinned.
    policy = Composite([PerLocationBudget(2), Reservoir(1, seed=0)])
    kept = set()
    for i in range(30):
        if policy.admit(_mem(i, loc="hot")):
            kept.add(i)
        for seq in policy.pop_evictions():
            kept.discard(seq)
    assert 0 in kept and 1 in kept  # budget sample survives whole


def test_keep_all_cannot_drop():
    assert KeepAll().can_drop is False
    assert Composite([KeepAll()]).can_drop is False
    assert Composite([KeepAll(), HashRate(0.5)]).can_drop is True


# -- spec parsing -------------------------------------------------------------


def test_bare_rate_builds_budgeted_composite():
    policy = parse_policy("0.1", seed=3)
    assert isinstance(policy, Composite)
    kinds = [p.kind for p in policy.policies]
    assert kinds == ["budget", "rate"]
    assert policy.describe() == "budget:8+rate:0.1"


def test_rate_one_is_keep_all():
    assert isinstance(parse_policy("1.0"), KeepAll)
    assert isinstance(parse_policy("rate:1"), KeepAll)
    assert isinstance(parse_policy("all"), KeepAll)


def test_term_grammar():
    assert parse_policy("rate:0.25").describe() == "rate:0.25"
    assert parse_policy("budget:16").describe() == "budget:16"
    assert parse_policy("epoch:500:8192").describe() == "epoch:500:8192"
    assert parse_policy("reservoir:8").describe() == "reservoir:8"
    composed = parse_policy("budget:4+rate:0.05")
    assert composed.describe() == "budget:4+rate:0.05"


@pytest.mark.parametrize(
    "spec", ["", "2.0", "-0.5", "bogus", "rate:x", "epoch:5", "budget:0"]
)
def test_bad_specs_rejected(spec):
    with pytest.raises(ValueError):
        parse_policy(spec)


def test_build_sampler_off_for_empty_spec():
    assert build_sampler(None) is None
    assert build_sampler("") is None
    sampler = build_sampler("0.5", seed=7)
    assert sampler is not None
    assert sampler.describe() == "budget:8+rate:0.5@seed=7"


# -- sampler wrapper ----------------------------------------------------------


def test_sampler_passes_non_mem_and_counts_drops():
    sampler = build_sampler("rate:0.0")
    keep, evictions = sampler.observe(_lock(0))
    assert keep and not evictions
    keep, _ = sampler.observe(_mem(1, kind=OpKind.MEM_READ))
    assert not keep
    keep, _ = sampler.observe(_mem(2, kind=OpKind.MEM_WRITE))
    assert not keep
    assert sampler.dropped == {"mem_read": 1, "mem_write": 1}
    assert sampler.kept == 0


def test_nominal_rate_surfaces_hash_component():
    assert build_sampler("0.1").nominal_rate() == 0.1
    assert build_sampler("1.0").nominal_rate() == 1.0
    assert build_sampler("budget:8").nominal_rate() is None


# -- tracer integration -------------------------------------------------------


def _run_workload(sampler=None, seed=0):
    cluster = Cluster(seed=seed)
    tracer = Tracer(scope=FullScope(), sampler=sampler).bind(cluster)
    node = cluster.add_node("n")
    var = node.shared_var("x", 0)
    other = node.shared_var("y", 0)

    def writer():
        for i in range(10):
            var.set(i)
            other.set(i)

    def reader():
        while var.get() < 9:
            sleep(1)

    node.spawn(writer, name="w")
    node.spawn(reader, name="r")
    cluster.run()
    return tracer


def test_sampled_trace_marks_confidence_metadata():
    tracer = _run_workload(sampler=build_sampler("rate:0.0"))
    trace = tracer.trace
    assert trace.sampled is True
    assert trace.sampling_rate == 0.0
    assert not trace.mem_accesses()
    # HB records are untouched: thread lifecycle is still complete.
    assert trace.of_kind(OpKind.THREAD_BEGIN)
    assert trace.sampled_dropped["mem_write"] >= 1
    assert trace.sampled_dropped["mem_read"] >= 1


def test_rate_one_tracer_output_byte_identical():
    plain = _run_workload(sampler=None)
    sampled = _run_workload(sampler=build_sampler("1.0"))
    assert sampled.trace.sampled is False
    assert sampled.trace.dump_thread_files() == plain.trace.dump_thread_files()


def test_fixed_policy_and_seed_reproduce_identical_traces():
    first = _run_workload(sampler=build_sampler("0.3", seed=5))
    second = _run_workload(sampler=build_sampler("0.3", seed=5))
    assert first.trace.dump_thread_files() == second.trace.dump_thread_files()


def test_reservoir_evictions_removed_from_trace():
    sampler = build_sampler("reservoir:1")
    tracer = _run_workload(sampler=sampler)
    trace = tracer.trace
    per_loc = {}
    for record in trace.mem_accesses():
        per_loc.setdefault(record.location, []).append(record.seq)
    assert per_loc  # something survived
    assert all(len(seqs) == 1 for seqs in per_loc.values())
    assert trace.sampled_dropped.get("evicted", 0) >= 1
    # The evicted seqs are gone from the per-thread views too.
    files = trace.dump_thread_files()
    total = sum(
        len([line for line in text.splitlines() if line])
        for text in files.values()
    )
    assert total == len(trace)


def test_remove_seq_unknown_is_noop():
    trace = Trace(name="t")
    trace.append(_mem(3))
    assert trace.remove_seq(99) is None
    removed = trace.remove_seq(3)
    assert removed is not None and removed.seq == 3
    assert len(trace) == 0
