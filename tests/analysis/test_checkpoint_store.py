"""The checkpoint store: manifest lifecycle, CRC checks, shard logs."""

import json
import os

import pytest

from repro.analysis.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointStore,
    ShardLog,
    _read_shard_lines,
)
from repro.errors import CheckpointError


def _store(tmp_path, **kwargs):
    return CheckpointStore(
        directory=str(tmp_path / "ck"),
        benchmark="ZK-1144",
        config_fp="abcd1234abcd1234",
        **kwargs,
    )


def test_fresh_store_writes_manifest(tmp_path):
    store = _store(tmp_path)
    manifest = json.load(open(os.path.join(store.directory, "manifest.json")))
    assert manifest["format"] == "repro-checkpoint"
    assert manifest["version"] == CHECKPOINT_VERSION
    assert manifest["benchmark"] == "ZK-1144"
    assert manifest["stages"] == {}


def test_seal_and_load_stage_roundtrip(tmp_path):
    store = _store(tmp_path)
    store.seal_stage("hb", {"edges": [1, 2, 3]})
    assert store.stage_completed("hb")
    assert not store.stage_completed("reach")
    assert store.load_stage("hb") == {"edges": [1, 2, 3]}


def test_resume_missing_directory_raises(tmp_path):
    with pytest.raises(CheckpointError, match="not a checkpoint directory"):
        CheckpointStore(
            directory=str(tmp_path / "nope"),
            benchmark="ZK-1144",
            config_fp="x",
            resume=True,
        )


def test_resume_missing_manifest_raises(tmp_path):
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(CheckpointError, match="no checkpoint manifest"):
        CheckpointStore(
            directory=str(empty), benchmark="ZK-1144", config_fp="x", resume=True
        )


def test_resume_stale_version_raises(tmp_path):
    store = _store(tmp_path)
    path = os.path.join(store.directory, "manifest.json")
    manifest = json.load(open(path))
    manifest["version"] = 99
    json.dump(manifest, open(path, "w"))
    with pytest.raises(CheckpointError, match="stale checkpoint schema"):
        _store(tmp_path, resume=True)


def test_resume_wrong_benchmark_raises(tmp_path):
    _store(tmp_path)
    with pytest.raises(CheckpointError, match="benchmark"):
        CheckpointStore(
            directory=str(tmp_path / "ck"),
            benchmark="MR-3274",
            config_fp="abcd1234abcd1234",
            resume=True,
        )


def test_resume_config_fingerprint_mismatch_raises(tmp_path):
    _store(tmp_path)
    with pytest.raises(CheckpointError, match="fingerprint mismatch"):
        CheckpointStore(
            directory=str(tmp_path / "ck"),
            benchmark="ZK-1144",
            config_fp="ffffffffffffffff",
            resume=True,
        )


def test_damaged_stage_payload_fails_crc(tmp_path):
    store = _store(tmp_path)
    store.seal_stage("hb", {"edges": []})
    with open(os.path.join(store.directory, "hb.json"), "ab") as fh:
        fh.write(b"garbage")
    with pytest.raises(CheckpointError, match="CRC"):
        store.load_stage("hb")


def test_load_incomplete_stage_raises(tmp_path):
    store = _store(tmp_path)
    with pytest.raises(CheckpointError, match="not completed"):
        store.load_stage("detect")


def test_trace_fingerprint_mismatch_raises(tmp_path):
    store = _store(tmp_path)
    store.set_trace_fingerprint("00000001")
    store.check_trace_fingerprint("00000001")  # matching: fine
    with pytest.raises(CheckpointError, match="trace fingerprint"):
        store.check_trace_fingerprint("deadbeef")


def test_shard_log_roundtrip_and_torn_tail(tmp_path):
    path = str(tmp_path / "shards.jsonl")
    log = ShardLog(path)
    log.append({"index": 0, "pairs": [[1, 2]]})
    log.append({"index": 1, "pairs": []})
    log.close()
    # a SIGKILL mid-append leaves a torn tail: must be dropped silently
    with open(path, "ab") as fh:
        fh.write(b"R 000000ff 00000000 {\"torn")
    entries = _read_shard_lines(path)
    assert [e["index"] for e in entries] == [0, 1]


def test_shard_log_reopen_truncates_torn_tail(tmp_path):
    """Reopening for append after a SIGKILL must drop the torn tail:
    otherwise the next entry concatenates with the partial line and a
    second crash/resume cycle discards everything after it."""
    path = str(tmp_path / "shards.jsonl")
    log = ShardLog(path)
    log.append({"index": 0})
    log.close()
    with open(path, "ab") as fh:
        fh.write(b'R 000000ff 00000000 {"torn')
    log = ShardLog(path)
    log.append({"index": 1})
    log.close()
    assert [e["index"] for e in _read_shard_lines(path)] == [0, 1]


def test_shard_log_missing_file_is_empty(tmp_path):
    assert _read_shard_lines(str(tmp_path / "absent.jsonl")) == []


def test_fresh_store_clears_stale_stage_and_shard_files(tmp_path):
    """A non-resume run reusing a checkpoint directory owns it: stage
    payloads and shard files from the previous run must not leak into
    (or be merged with) the new run's results."""
    store = _store(tmp_path)
    store.seal_stage("hb", {"edges": [1, 2]})
    store.shard_log("detect").append({"index": 7})
    store.shard_log("trigger").append({"report_id": 3})
    store.seal()

    fresh = _store(tmp_path)  # same directory, resume=False
    assert not fresh.stage_completed("hb")
    assert fresh.load_shards("detect") == []
    assert fresh.load_shards("trigger") == []
    assert not os.path.exists(os.path.join(fresh.directory, "hb.json"))


def test_config_fingerprint_tracks_fault_plan_content():
    """Editing the fault plan's *contents* must invalidate a resume —
    presence alone would silently reuse a trace from the old plan."""
    from repro.analysis.checkpoint import config_fingerprint
    from repro.pipeline import PipelineConfig
    from repro.runtime.faults import FaultAction, FaultKind, FaultPlan

    def fp(plan):
        return config_fingerprint(
            "ZK-1144", PipelineConfig(fault_plan=plan)
        )

    crash_a = FaultPlan([FaultAction(at=5, kind=FaultKind.CRASH, target="a")])
    crash_b = FaultPlan([FaultAction(at=9, kind=FaultKind.CRASH, target="b")])
    assert fp(crash_a) == fp(
        FaultPlan([FaultAction(at=5, kind=FaultKind.CRASH, target="a")])
    )
    assert fp(crash_a) != fp(crash_b)
    assert fp(crash_a) != fp(None)


def test_shard_log_registered_incomplete_in_manifest(tmp_path):
    store = _store(tmp_path)
    store.shard_log("detect").append({"index": 0})
    store.seal()
    assert not store.stage_completed("detect")
    resumed = _store(tmp_path, resume=True)
    assert [e["index"] for e in resumed.load_shards("detect")] == [0]


def test_config_fingerprint_tracks_sampling_policy():
    """Resuming a sampled run under a different policy/seed would feed
    the detector a different record set; sampling off must keep the
    pre-sampling fingerprint so old checkpoints stay resumable."""
    from repro.analysis.checkpoint import config_fingerprint
    from repro.pipeline import PipelineConfig

    def fp(**kwargs):
        return config_fingerprint("ZK-1144", PipelineConfig(**kwargs))

    assert fp() == fp(sampling=None)
    assert fp(sampling="0.1") != fp()
    assert fp(sampling="0.1") != fp(sampling="0.5")
    assert fp(sampling="0.1", sampling_seed=1) != fp(
        sampling="0.1", sampling_seed=2
    )
    assert fp(sampling="0.1") == fp(sampling="0.1")
