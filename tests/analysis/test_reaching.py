"""Flow-sensitive reaching definitions."""

import ast

from repro.analysis.cfg import build_cfg
from repro.analysis.reaching import (
    compute_reaching_definitions,
    definitions_in,
    uses_in,
)


def _cfg(source):
    return build_cfg(ast.parse(source).body[0])


def _node_at_line(cfg, line, kind=None):
    nodes = [
        n
        for n in cfg.statement_nodes()
        if n.line == line and (kind is None or n.kind == kind)
    ]
    assert nodes, f"no node at line {line}"
    return nodes[0]


def test_straight_line_def_reaches_use():
    cfg = _cfg("def f():\n    x = 1\n    y = x\n")
    rd = compute_reaching_definitions(cfg)
    def_node = _node_at_line(cfg, 2)
    use_node = _node_at_line(cfg, 3)
    assert rd.reaching(use_node.nid, "x") == {def_node.nid}


def test_redefinition_kills_earlier_def():
    cfg = _cfg("def f():\n    x = 1\n    x = 2\n    y = x\n")
    rd = compute_reaching_definitions(cfg)
    second_def = _node_at_line(cfg, 3)
    use_node = _node_at_line(cfg, 4)
    assert rd.reaching(use_node.nid, "x") == {second_def.nid}


def test_branch_merges_definitions():
    cfg = _cfg(
        "def f(c):\n"
        "    if c:\n"
        "        x = 1\n"
        "    else:\n"
        "        x = 2\n"
        "    y = x\n"
    )
    rd = compute_reaching_definitions(cfg)
    use_node = _node_at_line(cfg, 6)
    reaching = rd.reaching(use_node.nid, "x")
    assert len(reaching) == 2


def test_loop_definition_reaches_condition():
    cfg = _cfg("def f(n):\n    while n:\n        n = n - 1\n")
    rd = compute_reaching_definitions(cfg)
    cond = _node_at_line(cfg, 2, kind="cond")
    body_def = _node_at_line(cfg, 3)
    assert body_def.nid in rd.reaching(cond.nid, "n")


def test_def_use_pairs_enumeration():
    cfg = _cfg("def f():\n    a = 1\n    b = a\n    c = b\n")
    rd = compute_reaching_definitions(cfg)
    pairs = rd.def_use_pairs()
    variables = {v for _d, _u, v in pairs}
    assert {"a", "b"} <= variables


def test_definitions_and_uses_extraction():
    cfg = _cfg(
        "def f(items):\n"
        "    total = 0\n"
        "    for item in items:\n"
        "        total = total + item\n"
    )
    for_cond = _node_at_line(cfg, 3, kind="cond")
    assert "item" in definitions_in(for_cond)
    assert "items" in uses_in(for_cond)
    body = _node_at_line(cfg, 4)
    assert definitions_in(body) == ["total"]
    assert set(uses_in(body)) == {"total", "item"}
