"""CFG construction and control dependence."""

import ast

from repro.analysis import build_cfg, control_dependence, postdominator_sets
from repro.analysis.cfg import KIND_COND


def _fn(source):
    tree = ast.parse(source)
    return tree.body[0]


def test_straight_line_cfg():
    cfg = build_cfg(_fn("def f():\n    a = 1\n    b = 2\n    return b\n"))
    stmts = cfg.statement_nodes()
    assert len(stmts) == 3
    # Linear chain: each statement has one successor.
    for node in stmts[:-1]:
        assert len(node.succs) == 1


def test_if_branches_rejoin():
    cfg = build_cfg(
        _fn(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n"
        )
    )
    cond = [n for n in cfg.nodes if n.kind == KIND_COND][0]
    assert len(cond.succs) == 2
    ret = [n for n in cfg.statement_nodes() if n.label == "return"][0]
    assert len(ret.preds) == 2


def test_while_loop_back_edge():
    cfg = build_cfg(
        _fn("def f(x):\n    while x:\n        x = x - 1\n    return x\n")
    )
    cond = [n for n in cfg.nodes if n.kind == KIND_COND][0]
    body = [n for n in cfg.statement_nodes() if n.label == "Assign"][0]
    assert cond.nid in body.succs  # back edge
    assert body.nid in cond.succs


def test_break_exits_loop():
    cfg = build_cfg(
        _fn(
            "def f(x):\n"
            "    while True:\n"
            "        if x:\n"
            "            break\n"
            "    return x\n"
        )
    )
    brk = [n for n in cfg.statement_nodes() if n.label == "break"][0]
    ret = [n for n in cfg.statement_nodes() if n.label == "return"][0]
    assert ret.nid in brk.succs


def test_return_connects_to_exit():
    cfg = build_cfg(
        _fn("def f(x):\n    if x:\n        return 1\n    return 2\n")
    )
    returns = [n for n in cfg.statement_nodes() if n.label == "return"]
    assert len(returns) == 2
    for node in returns:
        assert cfg.exit.nid in node.succs


def test_try_except_edges():
    cfg = build_cfg(
        _fn(
            "def f(x):\n"
            "    try:\n"
            "        risky(x)\n"
            "    except ValueError:\n"
            "        handle(x)\n"
            "    return x\n"
        )
    )
    handler = [
        n for n in cfg.statement_nodes() if "handle" in ast.dump(n.stmt)
    ][0]
    assert handler.preds  # reachable from the try body


def test_dominators_linear():
    from repro.analysis.pdg import dominator_sets

    cfg = build_cfg(_fn("def f():\n    a = 1\n    b = 2\n"))
    dom = dominator_sets(cfg)
    a = cfg.statement_nodes()[0]
    b = cfg.statement_nodes()[1]
    assert a.nid in dom[b.nid]
    assert b.nid not in dom[a.nid]
    assert cfg.entry.nid in dom[a.nid]


def test_dominators_branch_join():
    from repro.analysis.pdg import dominator_sets

    cfg = build_cfg(
        _fn(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    b = a\n"
        )
    )
    dom = dominator_sets(cfg)
    cond = [n for n in cfg.nodes if n.kind == KIND_COND][0]
    then_stmt = [n for n in cfg.statement_nodes() if n.label == "Assign"][0]
    join_stmt = [n for n in cfg.statement_nodes() if n.label == "Assign"][2]
    assert cond.nid in dom[join_stmt.nid]  # the branch dominates the join
    assert then_stmt.nid not in dom[join_stmt.nid]  # one arm does not


def test_postdominators_linear():
    cfg = build_cfg(_fn("def f():\n    a = 1\n    b = 2\n"))
    pdom = postdominator_sets(cfg)
    a = cfg.statement_nodes()[0]
    b = cfg.statement_nodes()[1]
    assert b.nid in pdom[a.nid]
    assert a.nid not in pdom[b.nid]


def test_control_dependence_if():
    cfg = build_cfg(
        _fn(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    b = 2\n"
        )
    )
    cd = control_dependence(cfg)
    cond = [n for n in cfg.nodes if n.kind == KIND_COND][0]
    then_stmt = [n for n in cfg.statement_nodes() if n.label == "Assign"][0]
    join_stmt = [n for n in cfg.statement_nodes() if n.label == "Assign"][1]
    assert cond.nid in cd[then_stmt.nid]
    assert cond.nid not in cd[join_stmt.nid]


def test_control_dependence_loop_body():
    cfg = build_cfg(
        _fn("def f(x):\n    while x:\n        work(x)\n")
    )
    cd = control_dependence(cfg)
    cond = [n for n in cfg.nodes if n.kind == KIND_COND][0]
    body = [
        n
        for n in cfg.statement_nodes()
        if n.kind == "stmt" and "work" in ast.dump(n.stmt)
    ][0]
    assert cond.nid in cd[body.nid]
