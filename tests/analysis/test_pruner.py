"""Static pruning end-to-end on real workload traces."""

import pytest

from repro.analysis import SourceIndex, StaticPruner
from repro.detect import ReportSet, detect_races
from repro.systems import workload_by_id
from repro.trace import Tracer, selective_scope_for


@pytest.fixture(scope="module")
def mr3274_artifacts():
    workload = workload_by_id("MR-3274")
    cluster = workload.cluster(0, churn=False)
    tracer = Tracer(scope=selective_scope_for(workload.modules()))
    tracer.bind(cluster)
    cluster.run()
    detection = detect_races(tracer.trace)
    reports = ReportSet.from_detection(detection)
    index = SourceIndex.from_modules(workload.modules())
    pruner = StaticPruner.for_trace(index, tracer.trace)
    return workload, tracer.trace, reports, pruner


def test_root_bug_survives_pruning(mr3274_artifacts):
    _w, _trace, reports, pruner = mr3274_artifacts
    result = pruner.apply(reports)
    kept_vars = {
        r.representative.variable for r in result.kept
    }
    assert "am.tasks" in kept_vars


def test_impact_reason_mentions_distributed_or_loop(mr3274_artifacts):
    """The get_task read's impact is the remote polling loop."""
    _w, _trace, reports, pruner = mr3274_artifacts
    get_remove = [
        r
        for r in reports
        if any(
            a.site and "get_task" in a.site.func
            for a in r.representative.accesses()
        )
    ]
    assert get_remove
    decision = pruner.assess(get_remove[0])
    assert decision.keep
    assert any("loop_exit" in reason for reason in decision.reasons)


def test_impactless_candidate_pruned(mr3274_artifacts):
    """registered_count is written under a lock in a handler and read by
    nothing failure-relevant: its (hypothetical) reports get pruned."""
    _w, trace, reports, pruner = mr3274_artifacts
    counted = [
        r
        for r in reports
        if "registered_count" in r.representative.variable
    ]
    for report in counted:
        decision = pruner.assess(report)
        assert not decision.keep


def test_prune_result_partition(mr3274_artifacts):
    _w, _trace, reports, pruner = mr3274_artifacts
    result = pruner.apply(reports)
    assert len(result.kept) + len(result.pruned) == len(reports)
    assert result.seconds >= 0
    assert "static pruning kept" in result.summary()


def test_decisions_cover_all_reports(mr3274_artifacts):
    _w, _trace, reports, pruner = mr3274_artifacts
    result = pruner.apply(reports)
    assert len(result.decisions) == len(reports)
    for decision in result.decisions:
        if decision.keep:
            assert decision.reasons


def test_rank_orders_soundness_then_confidence():
    from repro.analysis.pruner import rank_reports
    from repro.detect.report import BugReport

    def report(rid, soundness, confidence):
        return BugReport(
            report_id=rid,
            candidates=[],
            soundness=soundness,
            confidence=confidence,
        )

    ranked = rank_reports(
        [
            report(1, "hb-predicted", "sampled"),
            report(2, "sp-sound", "sampled"),
            report(3, "hb-predicted", "full"),
            report(4, "sp-sound", "full"),
            report(5, "hb-predicted", "partial"),
        ]
    )
    assert [r.report_id for r in ranked] == [4, 2, 3, 5, 1]


def test_rank_stable_by_id_within_tier():
    from repro.analysis.pruner import rank_reports
    from repro.detect.report import BugReport

    reports = [
        BugReport(report_id=rid, candidates=[], confidence="sampled")
        for rid in (3, 1, 2)
    ]
    assert [r.report_id for r in rank_reports(reports)] == [1, 2, 3]
