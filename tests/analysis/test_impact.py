"""Taint, failure instructions, and impact estimation."""

import ast

from repro.analysis import (
    DEFAULT_FAILURE_SPEC,
    FailureClass,
    ImpactAnalyzer,
    RpcLink,
    SourceIndex,
    TaintAnalysis,
    access_calls_at_line,
    build_cfg,
    find_failure_instructions,
)
from repro.ids import Site


def _index(source, path="repro/systems/demo/app.py"):
    return SourceIndex.from_sources({path: source})


def _fn(index, name):
    return index.functions_named(name)[0]


class TestTaint:
    def test_direct_assignment_propagates(self):
        index = _index(
            "def f(self):\n"
            "    v = self.store.get('k')\n"
            "    w = v + 1\n"
            "    return w\n"
        )
        fn = _fn(index, "f")
        sources = access_calls_at_line(fn, 2)
        assert sources
        taint = TaintAnalysis(fn).run(sources)
        assert "v" in taint.tainted_names
        assert "w" in taint.tainted_names
        assert taint.return_tainted

    def test_unrelated_vars_untainted(self):
        index = _index(
            "def f(self):\n"
            "    v = self.store.get('k')\n"
            "    other = 42\n"
            "    return other\n"
        )
        fn = _fn(index, "f")
        taint = TaintAnalysis(fn).run(access_calls_at_line(fn, 2))
        assert "other" not in taint.tainted_names
        assert not taint.return_tainted

    def test_tainted_call_arguments_identified(self):
        index = _index(
            "def f(self):\n"
            "    v = self.store.get('k')\n"
            "    helper(v, 1)\n"
        )
        fn = _fn(index, "f")
        taint = TaintAnalysis(fn).run(access_calls_at_line(fn, 2))
        assert taint.tainted_call_args
        _call, name, pos, _kw = taint.tainted_call_args[0]
        assert name == "helper"
        assert pos == [0]


class TestFailureInstructions:
    def test_all_four_classes_found(self):
        index = _index(
            "def f(self, x):\n"
            "    if x:\n"
            "        self.node.abort('bye')\n"
            "    self.log.error('bad')\n"
            "    while x:\n"
            "        x -= 1\n"
            "    raise RuntimeError('boom')\n"
        )
        cfg = build_cfg(_fn(index, "f").node)
        classes = {
            f.failure_class for f in find_failure_instructions(cfg)
        }
        assert classes == {
            FailureClass.ABORT,
            FailureClass.SEVERE_LOG,
            FailureClass.LOOP_EXIT,
            FailureClass.RAISE,
        }

    def test_info_log_not_a_failure(self):
        index = _index("def f(self):\n    self.log.info('fine')\n")
        cfg = build_cfg(_fn(index, "f").node)
        assert not find_failure_instructions(cfg)


class TestImpact:
    def test_data_dependent_abort_found(self):
        index = _index(
            "def f(self):\n"
            "    v = self.store.get('k')\n"
            "    if v is None:\n"
            "        self.node.abort('missing')\n"
        )
        analyzer = ImpactAnalyzer(index)
        impact = analyzer.access_impact(
            Site("repro/systems/demo/app.py", "f", 2)
        )
        assert impact.found

    def test_no_failure_no_impact(self):
        index = _index(
            "def f(self):\n"
            "    v = self.store.get('k')\n"
            "    return v\n"
            "def g(self):\n"
            "    f(self)\n"
        )
        analyzer = ImpactAnalyzer(index)
        impact = analyzer.access_impact(
            Site("repro/systems/demo/app.py", "f", 2)
        )
        assert not impact.found

    def test_loop_exit_dependence_found(self):
        index = _index(
            "def f(self):\n"
            "    while not self.flag.get():\n"
            "        self.wait()\n"
        )
        analyzer = ImpactAnalyzer(index)
        impact = analyzer.access_impact(
            Site("repro/systems/demo/app.py", "f", 2)
        )
        assert impact.found
        assert any("loop_exit" in r for r in impact.reasons)

    def test_one_level_caller_return_value(self):
        index = _index(
            "def reader(self):\n"
            "    return self.store.get('k')\n"
            "\n"
            "def caller(self):\n"
            "    v = reader(self)\n"
            "    if v is None:\n"
            "        self.log.fatal('gone')\n"
        )
        analyzer = ImpactAnalyzer(index)
        impact = analyzer.access_impact(
            Site("repro/systems/demo/app.py", "reader", 2)
        )
        assert impact.found
        assert any("caller" in r for r in impact.reasons)

    def test_one_level_callee_argument(self):
        index = _index(
            "def f(self):\n"
            "    v = self.store.get('k')\n"
            "    check(self, v)\n"
            "\n"
            "def check(self, value):\n"
            "    if value is None:\n"
            "        self.node.abort('nope')\n"
        )
        analyzer = ImpactAnalyzer(index)
        impact = analyzer.access_impact(
            Site("repro/systems/demo/app.py", "f", 2)
        )
        assert impact.found
        assert any("callee" in r for r in impact.reasons)

    def test_two_level_hops_not_followed(self):
        """Depth is one level, matching the paper's accuracy choice."""
        index = _index(
            "def reader(self):\n"
            "    return self.store.get('k')\n"
            "\n"
            "def mid(self):\n"
            "    return reader(self)\n"
            "\n"
            "def outer(self):\n"
            "    v = mid(self)\n"
            "    if v is None:\n"
            "        self.node.abort('x')\n"
        )
        analyzer = ImpactAnalyzer(index)
        impact = analyzer.access_impact(
            Site("repro/systems/demo/app.py", "reader", 2)
        )
        assert not impact.found

    def test_distributed_impact_via_rpc_link(self):
        """The MR-3274 shape: an RPC handler read feeds a remote polling
        loop.  The handler is registered under a *different* method name,
        so the name-based call graph cannot connect them — only the
        RPC-link analysis (paper's distributed impact) can."""
        index = _index(
            "def lookup_task(self, jid):\n"
            "    return self.tasks.get(jid)\n"
            "\n"
            "def poll(self, nm):\n"
            "    while nm.rpc('am').get_task('j1') is None:\n"
            "        nm.wait()\n"
        )
        link = RpcLink(
            method="get_task",
            handler_func="lookup_task",
            caller_sites=(Site("repro/systems/demo/app.py", "poll", 5),),
        )
        analyzer = ImpactAnalyzer(index, rpc_links=[link])
        impact = analyzer.access_impact(
            Site("repro/systems/demo/app.py", "lookup_task", 2)
        )
        assert impact.found
        assert any("RPC" in r for r in impact.reasons)

    def test_rpc_named_caller_found_via_call_graph(self):
        """When handler and method share a name the caller hop suffices."""
        index = _index(
            "def get_task(self, jid):\n"
            "    return self.tasks.get(jid)\n"
            "\n"
            "def poll(self, nm):\n"
            "    while nm.rpc('am').get_task('j1') is None:\n"
            "        nm.wait()\n"
        )
        analyzer = ImpactAnalyzer(index)
        impact = analyzer.access_impact(
            Site("repro/systems/demo/app.py", "get_task", 2)
        )
        assert impact.found

    def test_impact_is_cached(self):
        index = _index(
            "def f(self):\n"
            "    v = self.store.get('k')\n"
            "    return v\n"
        )
        analyzer = ImpactAnalyzer(index)
        site = Site("repro/systems/demo/app.py", "f", 2)
        first = analyzer.access_impact(site)
        second = analyzer.access_impact(site)
        assert first is second
