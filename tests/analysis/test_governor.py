"""Resource governance: budgets, deadlines, the degradation ladder."""

import time

import pytest

from repro import obs
from repro.analysis.governor import (
    DEGRADATION_LADDER,
    TRUNCATED_MAX_PAIRS,
    ResourceGovernor,
    StageBudget,
    maybe_stall,
    process_rss_mb,
)


def test_ladder_order_and_truncation_cap():
    assert DEGRADATION_LADDER == (
        "reach_chain",
        "detect_serial",
        "truncate_pairs",
        "abandoned",
    )
    assert 0 < TRUNCATED_MAX_PAIRS < 200_000


def test_process_rss_is_positive():
    rss = process_rss_mb()
    assert rss > 0  # a live interpreter is at least a few MB


def test_stage_budget_without_deadline_never_exceeds():
    budget = StageBudget(name="x", started=time.perf_counter() - 100)
    assert budget.elapsed() >= 100
    assert not budget.exceeded()


def test_stage_budget_deadline_is_sticky():
    budget = StageBudget(
        name="x", started=time.perf_counter() - 10, max_seconds=1.0
    )
    assert budget.exceeded()
    assert budget.deadline_hit
    assert budget.exceeded()  # still true, counted once


def test_governor_records_deadline_stages():
    governor = ResourceGovernor(max_stage_seconds=0.0)
    with governor.stage("slow") as budget:
        time.sleep(0.01)
        assert budget.exceeded()
    assert governor.deadline_stages == ["slow"]


def test_governor_without_deadline_records_nothing():
    governor = ResourceGovernor()
    with governor.stage("fast"):
        pass
    assert governor.deadline_stages == []


def test_reach_budget_tightens_only_when_set():
    governor = ResourceGovernor()
    assert governor.reach_budget(123) == 123
    governor = ResourceGovernor(memory_budget_mb=1)
    assert governor.reach_budget(10**9) == 1024 * 1024
    assert governor.reach_budget(5) == 5  # already tighter


def test_memory_pressure_thresholds():
    assert not ResourceGovernor().memory_pressure()
    # any real interpreter is over 1 MB and under 10^6 MB
    assert ResourceGovernor(memory_budget_mb=1).memory_pressure()
    assert not ResourceGovernor(memory_budget_mb=10**6).memory_pressure()


def test_degrade_appends_and_counts():
    registry = obs.MetricsRegistry(name="gov")
    governor = ResourceGovernor()
    with obs.use_registry(registry):
        governor.degrade("reach_chain", "reach", "too big")
        governor.degrade("truncate_pairs", "detect", "rss")
    assert governor.degradations == ["reach_chain", "truncate_pairs"]
    snapshot = registry.snapshot()["governor_degradations_total"]
    assert snapshot["value"] == 2.0
    assert "rung=reach_chain,stage=reach" in snapshot["series"]


def test_governor_summary_shape():
    governor = ResourceGovernor(max_stage_seconds=5, memory_budget_mb=64)
    governor.degrade("detect_serial", "detect")
    summary = governor.summary()
    assert summary["max_stage_seconds"] == 5
    assert summary["memory_budget_mb"] == 64
    assert summary["degradations"] == ["detect_serial"]


def test_maybe_stall_ignores_other_points(monkeypatch):
    monkeypatch.setenv("DCATCH_STALL", "hb_build:60")
    started = time.perf_counter()
    maybe_stall("detect_shard")  # different point: no sleep
    assert time.perf_counter() - started < 1


def test_maybe_stall_sleeps_at_named_point(monkeypatch):
    monkeypatch.setenv("DCATCH_STALL", "here:0.05")
    started = time.perf_counter()
    maybe_stall("here")
    assert time.perf_counter() - started >= 0.05


def test_maybe_stall_tolerates_malformed_spec(monkeypatch):
    monkeypatch.setenv("DCATCH_STALL", "here:not-a-number")
    maybe_stall("here")  # must not raise
