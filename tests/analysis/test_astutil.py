"""Source indexing: function anchoring and the name-based call graph."""

from repro.analysis import SourceIndex, access_calls_at_line
from repro.analysis.astutil import call_target_name, receiver_paths
import ast

SOURCE = (
    "def outer(self):\n"           # 1
    "    v = self.store.get('k')\n"  # 2
    "    helper(v)\n"                # 3
    "\n"
    "def helper(value):\n"           # 5
    "    return value\n"             # 6
    "\n"
    "class Widget:\n"                # 8
    "    def method(self):\n"        # 9
    "        self.parts.put('a', 1)\n"  # 10
)


def _index():
    return SourceIndex.from_sources({"repro/systems/demo/mod.py": SOURCE})


def test_function_at_anchors_to_innermost():
    index = _index()
    fn = index.function_at("repro/systems/demo/mod.py", 2)
    assert fn.name == "outer"
    method = index.function_at("repro/systems/demo/mod.py", 10)
    assert method.name == "method"


def test_function_at_misses_gracefully():
    index = _index()
    assert index.function_at("repro/systems/demo/mod.py", 999) is None
    assert index.function_at("elsewhere.py", 2) is None


def test_functions_named():
    index = _index()
    assert [f.name for f in index.functions_named("helper")] == ["helper"]
    assert index.functions_named("nope") == []


def test_callers_of():
    index = _index()
    callers = index.callers_of("helper")
    assert len(callers) == 1
    assert callers[0].caller.name == "outer"
    assert callers[0].line == 3


def test_access_calls_at_line():
    index = _index()
    fn = index.function_at("repro/systems/demo/mod.py", 2)
    calls = access_calls_at_line(fn, 2)
    assert len(calls) == 1
    assert call_target_name(calls[0]) == "get"
    assert receiver_paths(calls[0]) == ["self.store"]


def test_path_shortening_tolerates_absolute_paths():
    index = SourceIndex.from_sources(
        {"/abs/path/src/repro/systems/demo/mod.py": SOURCE}
    )
    # The same shortening convention the tracer's frames use.
    fn = index.function_at("src/repro/systems/demo/mod.py", 2)
    assert fn is not None and fn.name == "outer"


def test_receiver_paths_for_name_receiver():
    call = ast.parse("votes.put('a', 1)").body[0].value
    assert receiver_paths(call) == ["votes"]
