"""Property-based tests: CFG and postdominator invariants over random
structured programs."""

import ast

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import build_cfg, control_dependence, postdominator_sets

# Generate random structured Python function bodies.
_simple = st.sampled_from(
    ["x = 1", "y = x", "work(x)", "x = x + 1", "return x", "pass"]
)


def _indent(block, depth):
    pad = "    " * depth
    return "\n".join(pad + line for line in block)


@st.composite
def _blocks(draw, depth=0, max_depth=2):
    n = draw(st.integers(min_value=1, max_value=3))
    lines = []
    for _ in range(n):
        kind = draw(
            st.sampled_from(
                ["stmt", "if", "while"] if depth < max_depth else ["stmt"]
            )
        )
        if kind == "stmt":
            lines.append(draw(_simple))
        elif kind == "if":
            body = draw(_blocks(depth + 1, max_depth))
            lines.append("if x:")
            lines.extend("    " + b for b in body)
            if draw(st.booleans()):
                orelse = draw(_blocks(depth + 1, max_depth))
                lines.append("else:")
                lines.extend("    " + b for b in orelse)
        elif kind == "while":
            body = draw(_blocks(depth + 1, max_depth))
            lines.append("while x:")
            lines.extend("    " + b for b in body)
    return lines


@st.composite
def _functions(draw):
    body = draw(_blocks())
    source = "def f(x):\n" + _indent(body, 1)
    # Ensure it parses (the generator is structurally valid by design).
    tree = ast.parse(source)
    return tree.body[0]


@settings(max_examples=60, deadline=None)
@given(fn=_functions())
def test_cfg_edge_symmetry(fn):
    cfg = build_cfg(fn)
    for node in cfg.nodes:
        for succ in node.succs:
            assert node.nid in cfg.nodes[succ].preds
        for pred in node.preds:
            assert node.nid in cfg.nodes[pred].succs


@settings(max_examples=60, deadline=None)
@given(fn=_functions())
def test_exit_has_no_successors(fn):
    cfg = build_cfg(fn)
    assert cfg.exit.succs == []


@settings(max_examples=60, deadline=None)
@given(fn=_functions())
def test_entry_reaches_exit(fn):
    cfg = build_cfg(fn)
    seen = set()
    frontier = [cfg.entry.nid]
    while frontier:
        nid = frontier.pop()
        if nid in seen:
            continue
        seen.add(nid)
        frontier.extend(cfg.nodes[nid].succs)
    assert cfg.exit.nid in seen


@settings(max_examples=50, deadline=None)
@given(fn=_functions())
def test_postdominator_basic_laws(fn):
    cfg = build_cfg(fn)
    pdom = postdominator_sets(cfg)
    for node in cfg.nodes:
        assert node.nid in pdom[node.nid]  # reflexive
    assert pdom[cfg.exit.nid] == {cfg.exit.nid}


@settings(max_examples=50, deadline=None)
@given(fn=_functions())
def test_control_dependence_only_on_branches(fn):
    cfg = build_cfg(fn)
    cd = control_dependence(cfg)
    branch_ids = {n.nid for n in cfg.nodes if len(n.succs) >= 2}
    for nid, deps in cd.items():
        assert deps <= branch_ids
