"""Identifiers, call stacks, and deterministic id allocation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ids import CallStack, Frame, IdAllocator, Site, capture_stack


def test_id_allocator_monotonic_per_category():
    ids = IdAllocator()
    assert ids.next("rpc") == 1
    assert ids.next("rpc") == 2
    assert ids.next("msg") == 1  # independent category
    assert ids.tag("rpc") == "rpc-3"


@settings(max_examples=30, deadline=None)
@given(
    categories=st.lists(
        st.sampled_from(["a", "b", "c"]), min_size=1, max_size=40
    )
)
def test_id_allocator_unique_tags(categories):
    ids = IdAllocator()
    tags = [ids.tag(c) for c in categories]
    assert len(set(tags)) == len(tags)


def test_frame_and_site_rendering():
    frame = Frame("repro/systems/x/a.py", "handler", 42)
    assert str(frame) == "repro/systems/x/a.py:42(handler)"
    site = Site.of_frame(frame)
    assert str(site) == "repro/systems/x/a.py:42"
    assert site.func == "handler"


def test_callstack_top_and_site():
    inner = Frame("repro/systems/x/a.py", "f", 1)
    outer = Frame("repro/systems/x/b.py", "g", 2)
    stack = CallStack([inner, outer])
    assert stack.top == inner
    assert stack.site == Site.of_frame(inner)
    assert "<-" in stack.pretty()


def test_empty_callstack():
    stack = CallStack()
    assert stack.top is None
    assert stack.site is None
    assert stack.pretty() == "<no app frames>"


def test_capture_stack_filters_to_marked_packages():
    # This test file lives under tests/, which is a marked package.
    stack = capture_stack()
    assert stack
    assert all(
        "tests" in f.path or "repro/systems" in f.path or "examples" in f.path
        for f in stack
    )
    assert stack.top.func == "test_capture_stack_filters_to_marked_packages"


def test_callstacks_hashable_and_equal():
    f = Frame("tests/x.py", "f", 3)
    assert CallStack([f]) == CallStack([f])
    assert hash(CallStack([f])) == hash(CallStack([f]))
