"""Streaming detection: batch equivalence, resume, damage handling.

The core property: for any trace the streaming detector can express
(exactly-once message pairing, no whole-trace inference rules), the
single-pass candidate set equals batch detection under the same HB
model — for ANY compaction window, including window=1 (compact after
every record).  The window is a memory knob, never a soundness knob.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detect.races import detect_races
from repro.detect.streaming import (
    StreamingDetector,
    detect_races_streaming,
    load_stream_checkpoint,
)
from repro.errors import CheckpointError
from repro.hb.incremental import STREAM_UNSUPPORTED_FAMILIES
from repro.hb.model import FULL_MODEL
from repro.ids import CallStack
from repro.runtime.ops import OpEvent, OpKind
from repro.trace.store import Trace
from repro.workload import generate_workload

#: The model streaming actually runs: everything except the families
#: that need the whole trace at once.
STREAM_MODEL = FULL_MODEL.without(*STREAM_UNSUPPORTED_FAMILIES)


# -- random exactly-once traces ----------------------------------------------------

#: One step per entry: (segment 0-3, action).  Actions: a memory access
#: on one of two locations, a send (fresh unique tag), or a recv of the
#: oldest outstanding tag — so every (send, recv) pair is exactly-once
#: and the recv always appears after its send, like a real timeline.
STEPS = st.lists(
    st.tuples(
        st.integers(0, 3),
        st.sampled_from(["read", "write", "send", "recv"]),
        st.integers(0, 1),
    ),
    min_size=2,
    max_size=30,
)


def _build(recipe):
    trace = Trace(name="stream-prop")
    outstanding = []
    fresh = 0
    for i, (segment, action, loc) in enumerate(recipe):
        if action == "send":
            kind, obj = OpKind.SOCK_SEND, f"m{fresh}"
            outstanding.append(obj)
            fresh += 1
        elif action == "recv":
            if not outstanding:
                continue
            kind, obj = OpKind.SOCK_RECV, outstanding.pop(0)
        else:
            kind = OpKind.MEM_READ if action == "read" else OpKind.MEM_WRITE
            obj = f"x{loc}"
        trace.append(
            OpEvent(
                seq=i,
                kind=kind,
                obj_id=obj,
                node="n",
                tid=segment,
                thread_name=f"t{segment}",
                segment=segment,
                callstack=CallStack(),
                location=(1, f"x{loc}") if kind.value.startswith("mem") else None,
            )
        )
    return trace


def _pair_set(candidates):
    return {(c.first.seq, c.second.seq) for c in candidates}


@settings(max_examples=200, deadline=None)
@given(recipe=STEPS, window=st.sampled_from([1, 3, 7, 10_000]))
def test_streaming_matches_batch_any_window(recipe, window):
    trace = _build(recipe)
    batch = detect_races(trace, model=STREAM_MODEL)
    stream = detect_races_streaming(
        records=trace.records,
        model=STREAM_MODEL,
        window=window,
        expected_streams={r.tid for r in trace.records},
    )
    assert _pair_set(stream.candidates) == _pair_set(batch.candidates)
    assert not stream.stopped_early
    assert stream.confidence == "full"


@settings(max_examples=50, deadline=None)
@given(recipe=STEPS)
def test_window_one_retires_state(recipe):
    """The tightest window must actually bound the active-access set:
    high water can never exceed the unbounded (huge-window) run's."""
    trace = _build(recipe)
    streams = {r.tid for r in trace.records}
    tight = detect_races_streaming(
        records=trace.records, model=STREAM_MODEL, window=1,
        expected_streams=streams,
    )
    loose = detect_races_streaming(
        records=trace.records, model=STREAM_MODEL, window=10_000,
        expected_streams=streams,
    )
    assert tight.active_high_water <= loose.active_high_water
    assert _pair_set(tight.candidates) == _pair_set(loose.candidates)


# -- generated workloads: resume, damage, ground truth ------------------------------


@pytest.fixture(scope="module")
def small_workload(tmp_path_factory):
    out = tmp_path_factory.mktemp("gen")
    return generate_workload("minizk", "small", 7, str(out))


def _planted_set(generated):
    return {
        frozenset((r["first_seq"], r["second_seq"]))
        for r in generated.planted_races
    }


def test_wal_streaming_finds_planted_races(small_workload):
    result = detect_races_streaming(wal_dir=small_workload.wal_dir, window=64)
    found = {frozenset(p) for p in result.candidate_seq_pairs()}
    assert found == _planted_set(small_workload)
    assert result.records_consumed == small_workload.records
    assert result.confidence == "full"
    assert result.records_per_second > 0


def test_checkpoint_resume_equals_single_pass(small_workload, tmp_path):
    ckpt = str(tmp_path / "stream.ckpt")
    full = detect_races_streaming(wal_dir=small_workload.wal_dir, window=32)

    # First pass: stop partway through, sealing a checkpoint.
    calls = {"n": 0}

    def stop_soon():
        calls["n"] += 1
        return calls["n"] > 4

    partial = detect_races_streaming(
        wal_dir=small_workload.wal_dir,
        window=32,
        checkpoint_path=ckpt,
        checkpoint_every=1,
        should_stop=stop_soon,
    )
    assert partial.stopped_early
    assert partial.records_consumed < small_workload.records
    assert os.path.exists(ckpt)
    saved = load_stream_checkpoint(ckpt)
    assert saved["snapshot"]["records_consumed"] > 0

    resumed = detect_races_streaming(
        wal_dir=small_workload.wal_dir,
        window=32,
        checkpoint_path=ckpt,
        resume=True,
    )
    assert not resumed.stopped_early
    assert resumed.records_consumed == small_workload.records
    assert _pair_set(resumed.candidates) == _pair_set(full.candidates)


def test_resume_rejects_different_window(small_workload, tmp_path):
    ckpt = str(tmp_path / "stream.ckpt")
    detect_races_streaming(
        wal_dir=small_workload.wal_dir,
        window=32,
        checkpoint_path=ckpt,
        checkpoint_every=1,
        should_stop=lambda: True,
    )
    with pytest.raises(CheckpointError):
        detect_races_streaming(
            wal_dir=small_workload.wal_dir,
            window=64,  # different fingerprint
            checkpoint_path=ckpt,
            resume=True,
        )


def test_damaged_wal_degrades_to_partial(tmp_path):
    generated = generate_workload("minimr", "small", 3, str(tmp_path / "g"))
    # Corrupt one record mid-segment: the rest of that stream is
    # truncated, the other streams still parse.
    victim = None
    for root, _dirs, files in os.walk(generated.wal_dir):
        for name in sorted(files):
            if name.endswith(".wal"):
                victim = os.path.join(root, name)
                break
        if victim:
            break
    lines = open(victim).read().splitlines(keepends=True)
    body = [i for i, l in enumerate(lines) if l.startswith("R ")]
    middle = body[len(body) // 2]
    lines[middle] = "R 00000bad deadbeef {broken\n"
    open(victim, "w").writelines(lines)

    result = detect_races_streaming(wal_dir=generated.wal_dir)
    assert result.confidence == "partial"
    assert result.damage
    assert result.records_consumed < generated.records


def test_exactly_one_source_required():
    with pytest.raises(ValueError):
        detect_races_streaming()
    with pytest.raises(ValueError):
        detect_races_streaming(records=[], wal_dir="/nonexistent")


def test_feed_api_snapshot_roundtrip(small_workload):
    from repro.trace.salvage import salvage_trace

    trace, _ = salvage_trace(small_workload.wal_dir)
    detector = StreamingDetector(model=STREAM_MODEL, window=16)
    mid = len(trace.records) // 2
    for record in trace.records[:mid]:
        detector.feed(record)

    # Serialize mid-stream, restore, finish on the copy.
    snapshot = json.loads(json.dumps(detector.to_snapshot()))
    restored = StreamingDetector.from_snapshot(snapshot, STREAM_MODEL)
    for record in trace.records[mid:]:
        restored.feed(record)
    restored.finish()

    for record in trace.records[mid:]:
        detector.feed(record)
    detector.finish()
    assert _pair_set(restored.candidates) == _pair_set(detector.candidates)
    assert {
        frozenset(p) for p in _pair_set(detector.candidates)
    } == _planted_set(small_workload)


def test_streaming_with_sampler_marks_sampled(small_workload):
    from repro.trace.sampling import build_sampler

    result = detect_races_streaming(
        wal_dir=small_workload.wal_dir,
        window=64,
        sampler=build_sampler("rate:0.0"),
    )
    # All memory accesses were cut; the HB stream still parsed whole.
    assert result.confidence == "sampled"
    assert not result.candidates
    assert result.sampled_dropped
    assert set(result.sampled_dropped) <= {"mem_read", "mem_write"}


def test_streaming_budgeted_sampling_keeps_planted_races(small_workload):
    from repro.trace.sampling import build_sampler

    result = detect_races_streaming(
        wal_dir=small_workload.wal_dir,
        window=64,
        sampler=build_sampler("0.1"),
    )
    assert result.confidence == "sampled"
    found = {frozenset(p) for p in result.candidate_seq_pairs()}
    # The per-location budget keeps cold (racing) locations whole.
    assert found >= _planted_set(small_workload)


def test_streaming_rate_one_sampler_is_noop(small_workload):
    from repro.trace.sampling import build_sampler

    plain = detect_races_streaming(wal_dir=small_workload.wal_dir, window=64)
    sampled = detect_races_streaming(
        wal_dir=small_workload.wal_dir,
        window=64,
        sampler=build_sampler("1.0"),
    )
    assert sampled.confidence == "full"
    assert sampled.candidate_seq_pairs() == plain.candidate_seq_pairs()
    assert sampled.records_consumed == plain.records_consumed


def test_resume_rejects_different_sampling_policy(small_workload, tmp_path):
    from repro.trace.sampling import build_sampler

    ckpt = str(tmp_path / "stream.ckpt")
    detect_races_streaming(
        wal_dir=small_workload.wal_dir,
        window=32,
        sampler=build_sampler("0.5", seed=1),
        checkpoint_path=ckpt,
        checkpoint_every=1,
        should_stop=lambda: True,
    )
    with pytest.raises(CheckpointError):
        detect_races_streaming(
            wal_dir=small_workload.wal_dir,
            window=32,
            sampler=build_sampler("0.5", seed=2),  # different seed
            checkpoint_path=ckpt,
            resume=True,
        )
