"""Chunked trace analysis (the paper's OOM fallback)."""

import pytest

from repro.detect import detect_races
from repro.detect.chunked import chunk_trace, detect_races_chunked
from repro.runtime import Cluster
from repro.trace import FullScope, Tracer


def _racy_trace(seed=0, writers=3):
    cluster = Cluster(seed=seed)
    tracer = Tracer(scope=FullScope()).bind(cluster)
    node = cluster.add_node("n")
    var = node.shared_var("x", 0)
    for i in range(writers):
        node.spawn(lambda: var.set(1), name=f"w{i}")
    cluster.run()
    return tracer.trace


def test_chunk_trace_partitions_all_records():
    trace = _racy_trace()
    chunks = chunk_trace(trace, chunk_size=7)
    assert sum(len(c) for c in chunks) >= len(trace)  # overlap >= 0
    seqs = set()
    for chunk in chunks:
        seqs |= {r.seq for r in chunk.records}
    assert seqs == {r.seq for r in trace.records}


def test_chunk_parameters_validated():
    trace = _racy_trace()
    with pytest.raises(ValueError):
        chunk_trace(trace, chunk_size=0)
    with pytest.raises(ValueError):
        chunk_trace(trace, chunk_size=5, overlap=5)


def test_chunked_detection_finds_close_races():
    trace = _racy_trace()
    whole = detect_races(trace)
    chunked = detect_races_chunked(trace, chunk_size=len(trace), overlap=0)
    # One chunk == whole-trace analysis.
    assert chunked.chunks == 1
    assert {c.static_pair for c in chunked.candidates} == {
        c.static_pair for c in whole.candidates
    }


def test_small_chunks_lose_cross_chunk_pairs():
    trace = _racy_trace(writers=4)
    whole = detect_races(trace)
    tiny = detect_races_chunked(trace, chunk_size=4, overlap=0)
    # Fewer or equal dynamic pairs: spanning pairs are missed.
    assert len(tiny.candidates) <= len(whole.candidates)
    assert tiny.chunks > 1


def test_overlap_recovers_some_pairs():
    trace = _racy_trace(writers=4)
    no_overlap = detect_races_chunked(trace, chunk_size=6, overlap=0)
    with_overlap = detect_races_chunked(trace, chunk_size=6, overlap=3)
    assert len(with_overlap.candidates) >= len(no_overlap.candidates)


def test_chunked_fits_where_whole_trace_ooms():
    """The Table 8 scenario: the paper's per-vertex algorithm OOMs on
    the full trace but completes chunk by chunk."""
    from repro.bench.runner import FULL_TRACING_BUDGET
    from repro.errors import TraceAnalysisOOM
    from repro.hb import HBGraph
    from repro.systems import workload_by_id

    workload = workload_by_id("CA-1011")
    cluster = workload.cluster(0)  # churn on: the big trace
    tracer = Tracer(scope=FullScope()).bind(cluster)
    cluster.run()
    trace = tracer.trace

    with pytest.raises(TraceAnalysisOOM):
        graph = HBGraph(
            trace, memory_budget=FULL_TRACING_BUDGET, compress_mem=False
        )
        detect_races(
            trace, memory_budget=FULL_TRACING_BUDGET, graph=graph
        )

    chunked = detect_races_chunked(
        trace,
        chunk_size=2000,
        overlap=200,
        memory_budget=FULL_TRACING_BUDGET,
        compress_mem=False,
    )
    assert chunked.chunks >= 4
    # The root-cause race is between temporally close accesses and
    # survives chunking.
    assert any("tokens" in c.variable for c in chunked.candidates)
