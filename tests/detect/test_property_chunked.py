"""Property-based tests for chunked detection."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detect import detect_races
from repro.detect.chunked import chunk_trace, detect_races_chunked
from repro.runtime import Cluster
from repro.trace import FullScope, Tracer


def _trace(writers, seed):
    cluster = Cluster(seed=seed)
    tracer = Tracer(scope=FullScope()).bind(cluster)
    node = cluster.add_node("n")
    var = node.shared_var("x", 0)
    for i in range(writers):
        node.spawn(lambda: var.set(1), name=f"w{i}")
    cluster.run()
    return tracer.trace


@settings(max_examples=20, deadline=None)
@given(
    writers=st.integers(2, 5),
    seed=st.integers(0, 3),
    chunk_size=st.integers(3, 60),
    overlap=st.integers(0, 2),
)
def test_chunk_windows_cover_trace(writers, seed, chunk_size, overlap):
    trace = _trace(writers, seed)
    chunks = chunk_trace(trace, chunk_size, min(overlap, chunk_size - 1))
    covered = set()
    for chunk in chunks:
        seqs = [r.seq for r in chunk.records]
        assert seqs == sorted(seqs)
        covered |= set(seqs)
    assert covered == {r.seq for r in trace.records}


@settings(max_examples=15, deadline=None)
@given(
    writers=st.integers(2, 4),
    seed=st.integers(0, 3),
    chunk_size=st.integers(5, 40),
)
def test_within_window_candidates_are_found(writers, seed, chunk_size):
    """Any whole-trace candidate whose accesses share a chunk window is
    found by chunked detection."""
    trace = _trace(writers, seed)
    whole = detect_races(trace)
    chunked = detect_races_chunked(trace, chunk_size)
    chunk_ranges = [
        (chunk.records[0].seq, chunk.records[-1].seq)
        for chunk in chunk_trace(trace, chunk_size)
        if chunk.records
    ]
    found = {(c.first.seq, c.second.seq) for c in chunked.candidates}
    for candidate in whole.candidates:
        a, b = candidate.first.seq, candidate.second.seq
        if any(lo <= a and b <= hi for lo, hi in chunk_ranges):
            assert (a, b) in found, (a, b)
