"""Parallel detection: sharded and chunked runs must equal serial runs,
and truncation at ``max_pairs_per_location`` must never be silent."""

import pickle

import pytest

from repro import obs
from repro.detect import detect_races
from repro.detect.chunked import detect_races_chunked
from repro.detect.parallel import (
    AUTO_SERIAL_THRESHOLD,
    MAX_CHUNK_RECORDS,
    MIN_CHUNK_RECORDS,
    MIN_RECORDS_PER_WORKER,
    derive_chunk_geometry,
    resolve_workers,
)
from repro.errors import TraceAnalysisOOM
from repro.runtime import Cluster
from repro.trace import FullScope, Tracer


def _racy_trace(seed=0, writers=3):
    """Several threads racing on two shared variables (two locations)."""
    cluster = Cluster(seed=seed)
    tracer = Tracer(scope=FullScope()).bind(cluster)
    node = cluster.add_node("n")
    x = node.shared_var("x", 0)
    y = node.shared_var("y", 0)

    def make_body(i):
        def body():
            x.set(i)
            y.get()
            y.set(i)

        return body

    for i in range(writers):
        node.spawn(make_body(i), name=f"w{i}")
    cluster.run()
    return tracer.trace


def _seq_pairs(detection):
    return [(c.first.seq, c.second.seq) for c in detection.candidates]


def test_resolve_workers_normalizes():
    import os

    assert resolve_workers(None) == 1
    assert resolve_workers(1) == 1
    assert resolve_workers(3) == 3
    assert resolve_workers(-2) == 1
    assert resolve_workers(0) == (os.cpu_count() or 1)


def test_resolve_workers_auto_by_trace_size():
    import os

    cpus = os.cpu_count() or 1
    assert resolve_workers("auto", records=10) == 1
    assert resolve_workers("auto", records=AUTO_SERIAL_THRESHOLD - 1) == 1
    # just past the threshold: scale by records, not straight to all CPUs
    assert resolve_workers("auto", records=AUTO_SERIAL_THRESHOLD) == min(
        cpus, AUTO_SERIAL_THRESHOLD // MIN_RECORDS_PER_WORKER
    )
    assert resolve_workers("auto", records=100 * MIN_RECORDS_PER_WORKER) == cpus
    # "auto" with no record count stays conservative
    assert resolve_workers("auto") == 1
    with pytest.raises(ValueError):
        resolve_workers("fast")


def test_derive_chunk_geometry():
    # Tiny trace: one whole-trace chunk, no fan-out at all.
    assert derive_chunk_geometry(1_000, 4) == (1_000, 100)
    assert derive_chunk_geometry(0, 4) == (1, 0)
    # The CA-1011 regression: ~10k records on 2 workers used to fan out
    # into 9 fixed chunks; derived geometry gives one chunk per worker.
    size, overlap = derive_chunk_geometry(10_000, 2)
    assert size == 5_000 and overlap == 500
    # Large traces are bounded by MAX_CHUNK_RECORDS per chunk.
    size, overlap = derive_chunk_geometry(1_000_000, 4)
    assert size <= MAX_CHUNK_RECORDS
    assert overlap == size // 10
    # Chunks never shrink below MIN_CHUNK_RECORDS even on a wide pool.
    size, _ = derive_chunk_geometry(8_000, 16)
    assert size >= MIN_CHUNK_RECORDS


def test_chunked_derived_geometry_matches_explicit():
    trace = _racy_trace(writers=4)
    explicit = detect_races_chunked(trace, chunk_size=len(trace.records))
    derived = detect_races_chunked(trace)
    # A trace this small derives a single whole-trace chunk.
    assert derived.chunks == 1
    assert sorted(
        (c.first.seq, c.second.seq) for c in derived.candidates
    ) == sorted((c.first.seq, c.second.seq) for c in explicit.candidates)


def test_detect_auto_records_decision_and_matches_serial():
    trace = _racy_trace()
    serial = detect_races(trace)
    registry = obs.MetricsRegistry(name="auto")
    with obs.use_registry(registry):
        auto = detect_races(trace, workers="auto")
    # tiny trace: auto must choose the serial path (the PR-3 lesson:
    # pool startup dwarfs enumeration below the threshold)
    assert auto.workers == 1
    assert auto.auto_decision == "serial"
    assert _seq_pairs(auto) == _seq_pairs(serial)
    snapshot = registry.snapshot()["detect_auto_workers_total"]
    assert snapshot["series"]["decision=serial"]["value"] == 1.0


def test_sharded_detection_matches_serial():
    for seed in (0, 1):
        trace = _racy_trace(seed=seed)
        serial = detect_races(trace)
        parallel = detect_races(trace, workers=2)
        assert serial.candidates  # the workload really races
        assert _seq_pairs(parallel) == _seq_pairs(serial)  # order included
        assert parallel.pairs_examined == serial.pairs_examined
        assert parallel.truncated_locations == serial.truncated_locations
        assert serial.workers == 1
        assert parallel.workers == 2


def test_chunked_parallel_matches_chunked_serial():
    for seed in (0, 1):
        trace = _racy_trace(seed=seed, writers=4)
        serial = detect_races_chunked(trace, chunk_size=8, overlap=2)
        parallel = detect_races_chunked(
            trace, chunk_size=8, overlap=2, workers=2
        )
        assert serial.chunks > 1
        assert _seq_pairs(parallel) == _seq_pairs(serial)
        assert parallel.per_chunk_counts == serial.per_chunk_counts
        assert parallel.truncated_locations == serial.truncated_locations
        assert parallel.workers == 2


def test_truncation_is_recorded_counted_and_warned(capsys):
    trace = _racy_trace(writers=4)
    registry = obs.MetricsRegistry(name="trunc")
    with obs.use_registry(registry):
        result = detect_races(trace, max_pairs_per_location=1)
    assert result.truncated_locations  # the cap really bit
    counter = registry.counter("detect_truncated_locations_total")
    assert counter.value == len(result.truncated_locations)
    err = capsys.readouterr().err
    assert "truncated" in err
    assert str(len(result.truncated_locations)) in err
    # The complete run examines more pairs and is not truncated.
    full = detect_races(trace)
    assert not full.truncated_locations
    assert full.pairs_examined > result.pairs_examined


def test_truncation_identical_under_sharding():
    trace = _racy_trace(writers=4)
    serial = detect_races(trace, max_pairs_per_location=2)
    parallel = detect_races(trace, max_pairs_per_location=2, workers=2)
    assert serial.truncated_locations
    assert parallel.truncated_locations == serial.truncated_locations
    assert _seq_pairs(parallel) == _seq_pairs(serial)


def test_oom_error_survives_pickling():
    """Chunk workers raise TraceAnalysisOOM across the process pool; the
    three-argument constructor must round-trip through pickle."""
    original = TraceAnalysisOOM("too big", required_bytes=10, budget_bytes=5)
    clone = pickle.loads(pickle.dumps(original))
    assert isinstance(clone, TraceAnalysisOOM)
    assert str(clone) == "too big"
    assert clone.required_bytes == 10
    assert clone.budget_bytes == 5


def test_parallel_chunks_propagate_oom():
    trace = _racy_trace(writers=4)
    with pytest.raises(TraceAnalysisOOM) as info:
        detect_races_chunked(
            trace, chunk_size=20, overlap=4, memory_budget=1, workers=2
        )
    # The exception crossed a process boundary with its payload intact.
    assert info.value.required_bytes > info.value.budget_bytes == 1


def test_detection_with_chain_backend_matches_bitset():
    trace = _racy_trace()
    bitset = detect_races(trace)
    chain = detect_races(trace, reach_backend="chain")
    assert _seq_pairs(chain) == _seq_pairs(bitset)
    assert chain.graph.reach_stats()["backend"] == "chain"
