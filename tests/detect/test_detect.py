"""Race detection: candidates, dedup counts, report sets."""

from repro.detect import ReportSet, Verdict, detect_races
from repro.hb import FULL_MODEL
from repro.runtime import Cluster, sleep
from repro.trace import FullScope, Tracer


def run_traced(build, seed=0):
    cluster = Cluster(seed=seed)
    tracer = Tracer(scope=FullScope()).bind(cluster)
    build(cluster)
    cluster.run()
    return tracer.trace


def test_simple_write_write_race_detected():
    def build(cluster):
        node = cluster.add_node("n")
        var = node.shared_var("x", 0)
        node.spawn(lambda: var.set(1), name="a")
        node.spawn(lambda: var.set(2), name="b")

    trace = run_traced(build)
    detection = detect_races(trace)
    assert detection.candidates
    pair = detection.candidates[0]
    assert pair.first.is_write and pair.second.is_write


def test_read_read_not_a_candidate():
    def build(cluster):
        node = cluster.add_node("n")
        var = node.shared_var("x", 0)
        node.spawn(lambda: var.get(), name="a")
        node.spawn(lambda: var.get(), name="b")

    trace = run_traced(build)
    detection = detect_races(trace)
    assert not detection.candidates


def test_ordered_accesses_not_candidates():
    def build(cluster):
        node = cluster.add_node("n")
        var = node.shared_var("x", 0)

        def parent():
            var.set(1)
            t = node.spawn(lambda: var.set(2), name="child")
            node.join(t)
            var.get()

        node.spawn(parent, name="parent")

    trace = run_traced(build)
    detection = detect_races(trace)
    assert not detection.candidates


def test_different_keys_do_not_conflict():
    def build(cluster):
        node = cluster.add_node("n")
        d = node.shared_dict("m")
        node.spawn(lambda: d.put("a", 1), name="a")
        node.spawn(lambda: d.put("b", 2), name="b")

    trace = run_traced(build)
    detection = detect_races(trace)
    # Only the synthetic #struct location may race, never the key slots.
    key_locations = {c.location[1] for c in detection.candidates}
    assert key_locations <= {"#struct"}


def test_same_key_put_vs_get_conflicts():
    def build(cluster):
        node = cluster.add_node("n")
        d = node.shared_dict("m")
        node.spawn(lambda: d.put("k", 1), name="w")
        node.spawn(lambda: d.get("k"), name="r")

    trace = run_traced(build)
    detection = detect_races(trace)
    assert any(c.location[1] == "k" for c in detection.candidates)


def test_static_vs_callstack_counts():
    def build(cluster):
        node = cluster.add_node("n")
        var = node.shared_var("x", 0)

        def writer():
            var.set(1)  # one static site

        def readers():
            read_once(var)
            read_twice(var)

        def read_once(v):
            v.get()

        def read_twice(v):
            v.get()

        node.spawn(writer, name="w")
        node.spawn(readers, name="r")

    trace = run_traced(build)
    detection = detect_races(trace)
    # Two read sites x one write site = 2 static pairs; callstack pairs >= 2.
    assert detection.static_count() == 2
    assert detection.callstack_count() >= 2


def test_report_set_groups_and_counts():
    def build(cluster):
        node = cluster.add_node("n")
        var = node.shared_var("x", 0)

        def writer():
            for _ in range(3):
                var.set(1)

        node.spawn(writer, name="w")
        node.spawn(lambda: var.get(), name="r")

    trace = run_traced(build)
    detection = detect_races(trace)
    reports = ReportSet.from_detection(detection)
    assert len(reports) >= 1
    report = reports.reports[0]
    assert report.dynamic_instances >= 1
    assert report.verdict is Verdict.UNKNOWN
    assert "DCbug report" in report.describe()
    assert reports.static_count() >= 1


def test_pull_pruning_reduces_candidates():
    """A polling loop's final read should not race with the satisfying
    write when Rule-Mpull is on (Table 5's LP column)."""

    def build(cluster):
        node = cluster.add_node("n")
        flag = node.shared_var("flag", False)

        def producer():
            sleep(50)
            flag.set(True)

        def consumer():
            while not flag.get():
                sleep(1)

        node.spawn(producer, name="p")
        node.spawn(consumer, name="c")

    trace = run_traced(build, seed=2)
    with_pull = detect_races(trace, model=FULL_MODEL)
    without_pull = detect_races(trace, model=FULL_MODEL.without("pull"))
    assert len(with_pull.candidates) < len(without_pull.candidates)
