"""Unit coverage for the sync-preserving closure and SP graph."""

from repro import obs
from repro.detect.syncpres import (
    SP_LOCK_RULE,
    annotate_sync_preserving,
    build_sp_graph,
    detect_races,
    lock_section_edges,
)
from repro.ids import CallStack
from repro.runtime.ops import OpEvent, OpKind
from repro.trace.store import Trace


def _trace(steps):
    """steps: (segment, kind, obj) tuples; mem kinds get a location."""
    trace = Trace(name="sp-unit")
    for seq, (segment, kind, obj) in enumerate(steps):
        mem = kind in (OpKind.MEM_READ, OpKind.MEM_WRITE)
        trace.append(
            OpEvent(
                seq=seq,
                kind=kind,
                obj_id=obj,
                node="n",
                tid=segment,
                thread_name=f"t{segment}",
                segment=segment,
                callstack=CallStack(),
                location=(1, str(obj)) if mem else None,
            )
        )
    return trace


A, R, W = OpKind.LOCK_ACQUIRE, OpKind.LOCK_RELEASE, OpKind.MEM_WRITE


def test_closure_orders_sections_in_observed_order():
    trace = _trace(
        [
            (0, A, "l"),
            (0, W, "x"),
            (0, R, "l"),
            (1, A, "l"),
            (1, W, "x"),
            (1, R, "l"),
        ]
    )
    assert lock_section_edges(trace) == [(2, 3)]


def test_reentrant_acquires_deepen_one_section():
    trace = _trace(
        [
            (0, A, "l"),
            (0, A, "l"),
            (0, R, "l"),
            (0, R, "l"),  # outermost span is seq 0..3
            (1, A, "l"),
            (1, R, "l"),
        ]
    )
    assert lock_section_edges(trace) == [(3, 4)]


def test_orphan_release_is_skipped():
    trace = _trace(
        [
            (0, R, "l"),  # no matching acquire: damaged trace
            (1, A, "l"),
            (1, R, "l"),
        ]
    )
    assert lock_section_edges(trace) == []


def test_unclosed_acquire_receives_but_never_emits():
    trace = _trace(
        [
            (0, A, "l"),
            (0, R, "l"),
            (1, A, "l"),  # holder never releases (crash / run end)
            (2, A, "l"),  # ...so the next section gets no edge
        ]
    )
    assert lock_section_edges(trace) == [(1, 2)]


def test_locks_are_independent():
    trace = _trace(
        [
            (0, A, "l1"),
            (0, R, "l1"),
            (1, A, "l2"),
            (1, R, "l2"),
            (2, A, "l1"),
            (2, R, "l1"),
        ]
    )
    assert lock_section_edges(trace) == [(1, 4)]


def test_sp_graph_promotes_lock_endpoints_and_counts_rule():
    trace = _trace(
        [
            (0, A, "l"),
            (0, W, "x"),
            (0, R, "l"),
            (1, A, "l"),
            (1, W, "x"),
            (1, R, "l"),
        ]
    )
    graph = build_sp_graph(trace)
    assert graph.edge_counts[SP_LOCK_RULE] == 1
    # The closure transitively orders the two writes.
    first, second = trace.records[1], trace.records[4]
    assert graph.happens_before(first, second)
    assert not graph.concurrent(first, second)


def test_annotate_publishes_tier_metrics():
    trace = _trace(
        [
            (0, A, "l"),
            (0, W, "x"),
            (0, R, "l"),
            (1, A, "l"),
            (1, W, "x"),
            (1, R, "l"),
            (2, W, "y"),
            (3, W, "y"),  # unprotected pair: stays sp-sound
        ]
    )
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        detection = annotate_sync_preserving(detect_races(trace))
    assert detection.sp_pairs == {(6, 7)}
    assert detection.sp_candidate_count() == 1
    snap = registry.snapshot()
    assert snap["detect_sp_candidates_total"]["value"] == 1
    tiers = snap["detect_soundness_tier_total"]["series"]
    assert tiers["tier=sp-sound"]["value"] == 1
    assert tiers["tier=hb-predicted"]["value"] == 1
