"""Report sets: grouping, counting, verdict bookkeeping."""

from repro.detect import ReportSet, Verdict, detect_races
from repro.detect.report import BugReport, _worst_verdict
from repro.runtime import Cluster
from repro.trace import FullScope, Tracer


def _reports():
    cluster = Cluster(seed=0)
    tracer = Tracer(scope=FullScope()).bind(cluster)
    node = cluster.add_node("n")
    var = node.shared_var("x", 0)

    def writer():
        var.set(1)
        var.set(2)

    node.spawn(writer, name="w")
    node.spawn(lambda: var.get(), name="r")
    cluster.run()
    return ReportSet.from_detection(detect_races(tracer.trace))


def test_report_ids_are_stable_and_unique():
    reports = _reports()
    ids = [r.report_id for r in reports]
    assert ids == sorted(ids)
    assert len(set(ids)) == len(ids)


def test_counts_by_verdict():
    reports = _reports()
    assert reports.callstack_count() == len(reports.reports)
    assert reports.callstack_count(Verdict.HARMFUL) == 0
    reports.reports[0].verdict = Verdict.HARMFUL
    assert reports.callstack_count(Verdict.HARMFUL) == 1


def test_static_count_uses_worst_verdict():
    reports = _reports()
    groups = reports.static_groups()
    # Give one report in a group a harmful verdict, others benign: the
    # group must count as harmful (the paper's CA-1011 note).
    for group in groups.values():
        for i, report in enumerate(group):
            report.verdict = Verdict.HARMFUL if i == 0 else Verdict.BENIGN
    assert reports.static_count(Verdict.HARMFUL) == len(groups)
    assert reports.static_count(Verdict.BENIGN) == 0


def test_worst_verdict_ordering():
    assert _worst_verdict([Verdict.SERIAL, Verdict.HARMFUL]) is Verdict.HARMFUL
    assert _worst_verdict([Verdict.BENIGN, Verdict.SERIAL]) is Verdict.BENIGN
    assert _worst_verdict([Verdict.UNKNOWN]) is Verdict.UNKNOWN


def test_describe_mentions_both_accesses():
    reports = _reports()
    report = reports.reports[0]
    text = report.describe()
    assert "mem_" in text
    assert "dynamic instances" in text


def test_filter_keeps_identity():
    reports = _reports()
    kept = reports.filter([reports.reports[0]])
    assert len(kept) == 1
    assert kept.reports[0] is reports.reports[0]


def test_summary_counts():
    reports = _reports()
    assert "reports" in reports.summary()
