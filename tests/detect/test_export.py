"""Report set serialization."""

import json

import pytest

from repro.detect import ReportSet, Verdict, detect_races
from repro.detect.export import (
    REPORTS_FORMAT,
    REPORTS_SCHEMA_VERSION,
    dump_reports,
    load_reports,
    load_reports_file,
    save_reports,
)
from repro.errors import TraceFormatError
from repro.runtime import Cluster
from repro.trace import FullScope, Tracer


def _reports():
    cluster = Cluster(seed=0)
    tracer = Tracer(scope=FullScope()).bind(cluster)
    node = cluster.add_node("n")
    var = node.shared_var("x", 0)
    node.spawn(lambda: var.set(1), name="a")
    node.spawn(lambda: var.get(), name="b")
    cluster.run()
    return ReportSet.from_detection(detect_races(tracer.trace))


def test_roundtrip_preserves_everything():
    reports = _reports()
    reports.reports[0].verdict = Verdict.HARMFUL
    reports.reports[0].verdict_detail = "hang when B first"
    restored = load_reports(dump_reports(reports))
    assert len(restored) == len(reports)
    first = restored.reports[0]
    assert first.verdict is Verdict.HARMFUL
    assert first.verdict_detail == "hang when B first"
    assert first.static_pair == reports.reports[0].static_pair
    assert first.callstack_pair == reports.reports[0].callstack_pair
    assert first.dynamic_instances == reports.reports[0].dynamic_instances


def test_file_roundtrip(tmp_path):
    reports = _reports()
    path = tmp_path / "reports.json"
    save_reports(reports, str(path))
    restored = load_reports_file(str(path))
    assert len(restored) == len(reports)


def test_json_is_stable():
    reports = _reports()
    assert dump_reports(reports) == dump_reports(reports)


def test_roundtrip_preserves_soundness_tier():
    reports = _reports()
    reports.reports[0].soundness = "sp-sound"
    restored = load_reports(dump_reports(reports))
    assert restored.reports[0].soundness == "sp-sound"
    assert restored.soundness_counts() == reports.soundness_counts()


def test_v2_document_carries_format_headers():
    payload = json.loads(dump_reports(_reports()))
    assert payload["format"] == REPORTS_FORMAT
    assert payload["version"] == REPORTS_SCHEMA_VERSION


def test_v1_document_loads_as_hb_predicted():
    """Pre-SP exports (bare {"reports": [...]}, no soundness field)
    load instead of erroring, every report at the default tier."""
    payload = json.loads(dump_reports(_reports()))
    for report in payload["reports"]:
        del report["soundness"]
    v1 = json.dumps({"reports": payload["reports"]})
    restored = load_reports(v1)
    assert len(restored) >= 1
    assert all(r.soundness == "hb-predicted" for r in restored)


def test_unknown_soundness_tier_rejected():
    payload = json.loads(dump_reports(_reports()))
    payload["reports"][0]["soundness"] = "vibes"
    with pytest.raises(TraceFormatError):
        load_reports(json.dumps(payload))


def test_wrong_format_or_future_version_rejected():
    payload = json.loads(dump_reports(_reports()))
    with pytest.raises(TraceFormatError):
        load_reports(json.dumps({**payload, "format": "not-reports"}))
    with pytest.raises(TraceFormatError):
        load_reports(json.dumps({**payload, "version": 99}))


def test_roundtrip_preserves_sampled_confidence():
    reports = _reports()
    for report in reports.reports:
        report.confidence = "sampled"
    restored = load_reports(dump_reports(reports))
    assert all(r.confidence == "sampled" for r in restored.reports)


def test_unknown_confidence_rejected():
    payload = json.loads(dump_reports(_reports()))
    payload["reports"][0]["confidence"] = "vibes"
    with pytest.raises(TraceFormatError):
        load_reports(json.dumps(payload))
