"""Report set serialization."""

from repro.detect import ReportSet, Verdict, detect_races
from repro.detect.export import (
    dump_reports,
    load_reports,
    load_reports_file,
    save_reports,
)
from repro.runtime import Cluster
from repro.trace import FullScope, Tracer


def _reports():
    cluster = Cluster(seed=0)
    tracer = Tracer(scope=FullScope()).bind(cluster)
    node = cluster.add_node("n")
    var = node.shared_var("x", 0)
    node.spawn(lambda: var.set(1), name="a")
    node.spawn(lambda: var.get(), name="b")
    cluster.run()
    return ReportSet.from_detection(detect_races(tracer.trace))


def test_roundtrip_preserves_everything():
    reports = _reports()
    reports.reports[0].verdict = Verdict.HARMFUL
    reports.reports[0].verdict_detail = "hang when B first"
    restored = load_reports(dump_reports(reports))
    assert len(restored) == len(reports)
    first = restored.reports[0]
    assert first.verdict is Verdict.HARMFUL
    assert first.verdict_detail == "hang when B first"
    assert first.static_pair == reports.reports[0].static_pair
    assert first.callstack_pair == reports.reports[0].callstack_pair
    assert first.dynamic_instances == reports.reports[0].dynamic_instances


def test_file_roundtrip(tmp_path):
    reports = _reports()
    path = tmp_path / "reports.json"
    save_reports(reports, str(path))
    restored = load_reports_file(str(path))
    assert len(restored) == len(reports)


def test_json_is_stable():
    reports = _reports()
    assert dump_reports(reports) == dump_reports(reports)
