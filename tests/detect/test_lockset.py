"""Lockset annotation and filtering."""

from repro.detect import detect_races, split_by_lockset
from repro.detect.lockset import LocksetIndex
from repro.runtime import Cluster
from repro.trace import FullScope, Tracer


def _run(build, seed=0):
    cluster = Cluster(seed=seed)
    tracer = Tracer(scope=FullScope()).bind(cluster)
    build(cluster)
    cluster.run()
    return tracer.trace


def test_held_locks_tracked_per_access():
    def build(cluster):
        node = cluster.add_node("n")
        var = node.shared_var("x", 0)
        lock = node.lock("guard")

        def worker():
            var.set(1)  # unlocked
            with lock:
                var.set(2)  # locked

        node.spawn(worker, name="w")

    trace = _run(build)
    index = LocksetIndex(trace)
    writes = [r for r in trace.mem_accesses() if r.is_write]
    assert index.held_at(writes[0]) == frozenset()
    assert len(index.held_at(writes[1])) == 1


def test_common_lock_pairs_split_out():
    def build(cluster):
        node = cluster.add_node("n")
        var = node.shared_var("x", 0)
        lock = node.lock("guard")

        def writer():
            with lock:
                var.set(1)

        def reader():
            with lock:
                var.get()

        node.spawn(writer, name="w")
        node.spawn(reader, name="r")

    trace = _run(build)
    detection = detect_races(trace)
    assert detection.candidates  # DCatch reports them (locks != ordering)
    split = split_by_lockset(trace, detection.candidates)
    assert split.lock_protected
    assert not split.unprotected
    _candidate, common = split.lock_protected[0]
    assert len(common) == 1


def test_unprotected_pairs_stay():
    def build(cluster):
        node = cluster.add_node("n")
        var = node.shared_var("x", 0)
        node.spawn(lambda: var.set(1), name="a")
        node.spawn(lambda: var.set(2), name="b")

    trace = _run(build)
    detection = detect_races(trace)
    split = split_by_lockset(trace, detection.candidates)
    assert split.unprotected
    assert not split.lock_protected


def test_reentrant_lock_depth_handled():
    def build(cluster):
        node = cluster.add_node("n")
        var = node.shared_var("x", 0)
        lock = node.lock("guard")

        def worker():
            with lock:
                with lock:
                    var.set(1)
                var.set(2)  # still inside the outer acquire
            var.set(3)  # released

        node.spawn(worker, name="w")

    trace = _run(build)
    index = LocksetIndex(trace)
    writes = [r for r in trace.mem_accesses() if r.is_write]
    assert len(index.held_at(writes[0])) == 1
    assert len(index.held_at(writes[1])) == 1
    assert index.held_at(writes[2]) == frozenset()
