"""Partial-trace tolerance: unmatched HB endpoints degrade, never raise.

A salvaged trace misses records.  The rule modules must finish anyway,
count what they could not match, and flip the graph to ``partial`` only
for patterns that cannot occur in a complete trace — so that fully
traced runs keep ``confidence: "full"``.
"""

import pytest

from repro import obs
from repro.detect import detect_races
from repro.hb import HBGraph
from repro.runtime import Cluster, OpKind, sleep
from repro.trace import FullScope, Trace, Tracer


def _run_traced(build, seed=0):
    cluster = Cluster(seed=seed)
    tracer = Tracer(scope=FullScope()).bind(cluster)
    build(cluster)
    cluster.run()
    return tracer.trace


def _drop(trace, predicate):
    """A copy of ``trace`` without the records matching ``predicate`` —
    the shape salvage produces when a node's WAL lost its tail."""
    out = Trace("filtered")
    for record in trace.records:
        if not predicate(record):
            out.append(record)
    return out


def _rpc_build(cluster):
    server = cluster.add_node("server")
    client = cluster.add_node("client")
    var = server.shared_var("x", 0)
    server.rpc_server.register("mutate", lambda: var.set(1))
    client.spawn(lambda: client.rpc("server").mutate(), name="caller")


def _sock_build(cluster):
    a = cluster.add_node("a")
    b = cluster.add_node("b")
    b.sockets.register("ping", lambda payload, src: None)
    a.spawn(lambda: a.send("b", "ping"), name="sender")


def _lock_build(cluster):
    node = cluster.add_node("n")
    lock = node.lock("m")
    def worker():
        with lock:
            sleep(1)
    node.spawn(worker, name="w")


class TestCompleteTraceStaysFull:
    def test_no_damage_patterns(self):
        trace = _run_traced(_rpc_build)
        graph = HBGraph(trace)
        assert not graph.partial
        assert graph.damage_patterns == set()

    def test_detection_confidence_full(self):
        trace = _run_traced(_rpc_build)
        assert detect_races(trace).confidence == "full"


class TestDamagePatterns:
    def test_lost_rpc_create_is_damage(self, capsys):
        trace = _run_traced(_rpc_build)
        damaged = _drop(trace, lambda r: r.kind is OpKind.RPC_CREATE)
        graph = HBGraph(damaged)
        assert "rpc_begin_without_create" in graph.damage_patterns
        assert graph.partial
        assert 'confidence="partial"' in capsys.readouterr().err

    def test_lost_rpc_end_is_damage(self):
        trace = _run_traced(_rpc_build)
        damaged = _drop(trace, lambda r: r.kind is OpKind.RPC_END)
        graph = HBGraph(damaged)
        assert "rpc_join_without_end" in graph.damage_patterns

    def test_lost_sock_send_from_traced_node_is_damage(self):
        trace = _run_traced(_sock_build)
        damaged = _drop(trace, lambda r: r.kind is OpKind.SOCK_SEND)
        graph = HBGraph(damaged)
        assert "sock_recv_without_send" in graph.damage_patterns

    def test_lost_lock_acquire_is_damage(self):
        trace = _run_traced(_lock_build)
        damaged = _drop(trace, lambda r: r.kind is OpKind.LOCK_ACQUIRE)
        graph = HBGraph(damaged)
        assert "lock_release_without_acquire" in graph.damage_patterns

    def test_detection_confidence_partial(self):
        trace = _run_traced(_rpc_build)
        damaged = _drop(trace, lambda r: r.kind is OpKind.RPC_CREATE)
        detection = detect_races(damaged)
        assert detection.confidence == "partial"


class TestBenignPatterns:
    """Patterns that occur in complete traces must NOT flip partial."""

    def test_lost_rpc_join_is_benign(self):
        # End-without-Join also happens on timed-out calls in intact runs.
        trace = _run_traced(_rpc_build)
        damaged = _drop(trace, lambda r: r.kind is OpKind.RPC_JOIN)
        graph = HBGraph(damaged)
        assert graph.unmatched["rpc_end_without_join"] >= 1
        assert not graph.partial

    def test_unreleased_lock_is_benign(self):
        # The holder crashing before release is a normal fault outcome.
        trace = _run_traced(_lock_build)
        damaged = _drop(trace, lambda r: r.kind is OpKind.LOCK_RELEASE)
        graph = HBGraph(damaged)
        assert graph.unmatched["lock_acquire_without_release"] >= 1
        assert not graph.partial

    def test_whole_benchmarks_stay_full(self):
        # Regression guard: a normally traced benchmark must never be
        # downgraded by the unmatched-endpoint heuristics.
        from repro.systems import workload_by_id

        workload = workload_by_id("MR-3274")
        cluster = Cluster(seed=0)
        tracer = Tracer(scope=FullScope()).bind(cluster)
        workload.build(cluster)
        cluster.run()
        graph = HBGraph(tracer.trace)
        assert not graph.partial, graph.damage_patterns


class TestSalvagedFlagPropagates:
    def test_trace_partial_flag_flips_graph(self):
        trace = _run_traced(_rpc_build)
        trace.partial = True  # what salvage sets on a damaged WAL
        graph = HBGraph(trace)
        assert graph.partial
        assert graph.damage_patterns == set()  # records themselves intact

    def test_stats_count_unmatched(self):
        trace = _run_traced(_rpc_build)
        damaged = _drop(trace, lambda r: r.kind is OpKind.RPC_CREATE)
        graph = HBGraph(damaged)
        assert graph.stats()["unmatched"] >= 1


class TestMetrics:
    def test_unmatched_counter_emitted(self):
        trace = _run_traced(_rpc_build)
        damaged = _drop(trace, lambda r: r.kind is OpKind.RPC_CREATE)
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            HBGraph(damaged)
        snap = registry.counter("hb_unmatched_edges_total").snapshot()
        assert snap["series"]["pattern=rpc_begin_without_create"]["value"] >= 1
