"""Reachability backends: bitset vs chain compression (repro.hb.reach)."""

import itertools

import pytest

from repro.errors import TraceAnalysisOOM
from repro.hb import HBGraph, NaiveReachability
from repro.hb.model import HBModel
from repro.hb.reach import CHAIN_ENTRY_BYTES
from repro.ids import CallStack
from repro.runtime import Cluster, sleep
from repro.runtime.ops import OpEvent, OpKind
from repro.trace import FullScope, Tracer
from repro.trace.store import Trace


def _mixed_trace(seed=0):
    """A workload exercising threads, RPC, events, sockets, and ZK."""
    cluster = Cluster(seed=seed)
    tracer = Tracer(scope=FullScope()).bind(cluster)
    cluster.zookeeper()
    a = cluster.add_node("a")
    b = cluster.add_node("b")
    shared = a.shared_var("s", 0)
    remote = b.shared_var("r", 0)
    q = b.event_queue("q")
    q.register("bump", lambda ev: remote.set(ev.payload))
    b.rpc_server.register("poke", lambda v: remote.get())
    b.on_message("note", lambda payload, src: q.post("bump", payload))

    def worker_a():
        zk = a.zk()
        shared.set(1)
        a.send("b", "note", 7)
        a.rpc("b").poke(1)
        zk.create("/flag", data=1)
        shared.get()

    def worker_b():
        zk = b.zk()
        while not zk.exists("/flag"):
            sleep(2)
        remote.set(5)

    a.spawn(worker_a, name="wa")
    b.spawn(worker_b, name="wb")
    cluster.run()
    return tracer.trace


def test_chain_backend_matches_bitset_on_mixed_workload():
    for seed in (0, 1, 2):
        trace = _mixed_trace(seed)
        bitset = HBGraph(trace, reach_backend="bitset")
        chain = HBGraph(trace, reach_backend="chain")
        records = trace.records
        sample = records[:: max(1, len(records) // 120)]
        for x, y in itertools.combinations(sample, 2):
            assert bitset.happens_before(x, y) == chain.happens_before(x, y)
            assert bitset.happens_before(y, x) == chain.happens_before(y, x)
            assert bitset.concurrent(x, y) == chain.concurrent(x, y)


def test_chain_backend_exhaustive_on_backbone():
    trace = _mixed_trace(0)
    bitset = HBGraph(trace, reach_backend="bitset")
    chain = HBGraph(trace, reach_backend="chain")
    n = len(bitset.backbone)
    assert n == len(chain.backbone)
    for i in range(n):
        for j in range(n):
            assert bitset.backbone_reaches(i, j) == chain.backbone_reaches(
                i, j
            ), (i, j)


def test_reach_stats_shapes():
    trace = _mixed_trace(0)
    bitset = HBGraph(trace, reach_backend="bitset")
    chain = HBGraph(trace, reach_backend="chain")
    bs = bitset.reach_stats()
    cs = chain.reach_stats()
    n = len(bitset.backbone)
    assert bs["backend"] == "bitset"
    assert bs["vertices"] == n
    assert bs["bytes"] == (n * n) // 8
    assert cs["backend"] == "chain"
    assert cs["vertices"] == n
    assert 1 <= cs["chains"] <= n
    assert cs["bytes"] == n * cs["chains"] * CHAIN_ENTRY_BYTES


def test_unknown_backend_rejected():
    trace = _mixed_trace(0)
    with pytest.raises(ValueError, match="reach_backend"):
        HBGraph(trace, reach_backend="sparse")


def test_chain_backend_fits_where_bitset_ooms():
    """The Table 8 scenario with the compressed backend: on an
    unselective trace the bit matrix blows the budget but the chain
    vectors fit, and the surviving analysis gives the same answers."""
    from repro.bench.runner import FULL_TRACING_BUDGET
    from repro.systems import workload_by_id

    workload = workload_by_id("CA-1011")
    cluster = workload.cluster(0)  # churn on: the big trace
    tracer = Tracer(scope=FullScope()).bind(cluster)
    cluster.run()
    trace = tracer.trace

    bitset = HBGraph(
        trace,
        memory_budget=FULL_TRACING_BUDGET,
        compress_mem=False,
        reach_backend="bitset",
    )
    with pytest.raises(TraceAnalysisOOM) as info:
        bitset.reach_stats()
    assert info.value.required_bytes > FULL_TRACING_BUDGET

    chain = HBGraph(
        trace,
        memory_budget=FULL_TRACING_BUDGET,
        compress_mem=False,
        reach_backend="chain",
    )
    stats = chain.reach_stats()
    assert stats["bytes"] <= FULL_TRACING_BUDGET
    # Cross-check against an uncompressed reference graph that has
    # enough budget for the full bit matrix.
    reference = HBGraph(trace, compress_mem=False, reach_backend="bitset")
    records = trace.records[:: max(1, len(trace.records) // 40)]
    for x, y in itertools.combinations(records, 2):
        assert chain.happens_before(x, y) == reference.happens_before(x, y)


def _chain_trace(length):
    """A synthetic single-segment trace: one long program-order chain."""
    trace = Trace(name="chain")
    for i in range(length):
        trace.append(
            OpEvent(
                seq=i,
                kind=OpKind.EVENT_CREATE,
                obj_id=f"e{i}",  # unique: no enqueue pairs, only Rule-Preg
                node="n",
                tid=1,
                thread_name="t",
                segment=1,
                callstack=CallStack(),
            )
        )
    return trace


def test_naive_reachability_survives_long_chains():
    """Regression: the memoized DFS used to recurse once per chain
    vertex and hit Python's recursion limit on program-order chains a
    few thousand records long."""
    length = 3000
    model = HBModel(
        rpc=False,
        socket=False,
        push=False,
        pull=False,
        fork_join=False,
        event=False,
        eserial=False,
    )
    graph = HBGraph(_chain_trace(length), model=model)
    assert len(graph.backbone) == length
    naive = NaiveReachability(graph)
    assert naive.backbone_reaches(0, length - 1)
    assert not naive.backbone_reaches(length - 1, 0)
    assert graph.backbone_reaches(0, length - 1)
    # The chain backend agrees and compresses the whole segment to one
    # chain: 4 bytes per vertex instead of length/8.
    chain = HBGraph(_chain_trace(length), model=model, reach_backend="chain")
    assert chain.reach_stats()["chains"] == 1
    assert chain.backbone_reaches(0, length - 1)
    assert not chain.backbone_reaches(1, 0)
