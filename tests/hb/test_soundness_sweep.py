"""Soundness sweep: HB construction never produces backward edges.

Two real bugs in this repo's history were ordering inversions between a
record's emission point and its operation's effect (ZK updates recorded
after their notifications; thread-create records after the child
started).  ``HBGraph.add_edge`` now rejects backward edges loudly; this
sweep builds the graph for every workload under several seeds and both
scopes so any future inversion fails here first.
"""

import pytest

from repro.detect import detect_races
from repro.systems import all_workloads, extra_workloads
from repro.trace import FullScope, Tracer, selective_scope_for


@pytest.mark.parametrize(
    "workload",
    all_workloads() + extra_workloads(),
    ids=lambda w: w.info.bug_id,
)
def test_no_backward_edges_any_workload(workload):
    for seed in (0, 3, 7):
        cluster = workload.cluster(seed, churn=False)
        tracer = Tracer(scope=FullScope()).bind(cluster)
        cluster.run()
        # Construction raises ReproError on any backward edge.
        detection = detect_races(tracer.trace)
        graph = detection.graph
        for i, succs in enumerate(graph._succ):
            for j in succs:
                assert graph.backbone[i].seq < graph.backbone[j].seq


def test_no_backward_edges_selective_scope():
    for workload in all_workloads():
        cluster = workload.cluster(None)
        tracer = Tracer(scope=selective_scope_for(workload.modules()))
        tracer.bind(cluster)
        cluster.run()
        detect_races(tracer.trace)  # raises on inversion


def test_reads_never_observe_future_writes():
    """The tracer invariant behind it all: observed_write < read seq."""
    for workload in all_workloads():
        cluster = workload.cluster(None, churn=False)
        tracer = Tracer(scope=FullScope()).bind(cluster)
        cluster.run()
        for record in tracer.trace.mem_accesses():
            if record.observed_write is not None:
                assert record.observed_write < record.seq, record
