"""Property-based differential test of all four reachability engines.

Random small traces (random segment interleavings, random mix of HB and
memory records, random extra cross-segment edges) are fed to the bit-set
engine, the chain-compressed backend, the naive DFS, and vector clocks;
all four must agree on ``happens_before`` and ``concurrent`` for every
record pair.  This is the detector's core query — any divergence here is
a missed or phantom race downstream.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hb import HBGraph, NaiveReachability, VectorClockEngine
from repro.hb.model import HBModel
from repro.ids import CallStack
from repro.runtime.ops import OpEvent, OpKind
from repro.trace.store import Trace

#: Program order only: every cross-segment edge is then introduced by
#: the test itself, so the random edge set fully controls the DAG shape.
PO_MODEL = HBModel(
    rpc=False,
    socket=False,
    push=False,
    pull=False,
    fork_join=False,
    event=False,
    eserial=False,
)

RECORDS = st.lists(
    st.tuples(st.integers(0, 3), st.sampled_from(["hb", "read", "write"])),
    min_size=2,
    max_size=24,
)
EDGE_PICKS = st.lists(
    st.tuples(st.integers(0, 10_000), st.integers(0, 10_000)), max_size=8
)


def _build_trace(recipe):
    trace = Trace(name="prop")
    for i, (segment, kind) in enumerate(recipe):
        if kind == "hb":
            event = OpEvent(
                seq=i,
                kind=OpKind.EVENT_CREATE,
                obj_id=f"e{i}",  # unique: no rule edges beyond Rule-Preg
                node="n",
                tid=segment,
                thread_name=f"t{segment}",
                segment=segment,
                callstack=CallStack(),
            )
        else:
            event = OpEvent(
                seq=i,
                kind=OpKind.MEM_READ if kind == "read" else OpKind.MEM_WRITE,
                obj_id=1,
                node="n",
                tid=segment,
                thread_name=f"t{segment}",
                segment=segment,
                callstack=CallStack(),
                location=(1, "x"),
            )
        trace.append(event)
    return trace


def _apply_random_edges(graphs, edge_picks):
    """Add the same random forward cross edges to every graph."""
    backbone = graphs[0].backbone
    if len(backbone) < 2:
        return
    for x, y in edge_picks:
        i, j = sorted((x % len(backbone), y % len(backbone)))
        if i == j:
            continue
        for graph in graphs:
            graph.add_edge(backbone[i].seq, backbone[j].seq, "test")


@settings(max_examples=200, deadline=None)
@given(recipe=RECORDS, edge_picks=EDGE_PICKS)
def test_four_engines_agree_on_every_pair(recipe, edge_picks):
    trace = _build_trace(recipe)
    bitset = HBGraph(trace, model=PO_MODEL, reach_backend="bitset")
    chain = HBGraph(trace, model=PO_MODEL, reach_backend="chain")
    _apply_random_edges([bitset, chain], edge_picks)
    naive = NaiveReachability(bitset)
    vc = VectorClockEngine(bitset)
    for x, y in itertools.combinations(trace.records, 2):
        expected = naive.happens_before(x, y)
        assert bitset.happens_before(x, y) == expected, (x, y)
        assert chain.happens_before(x, y) == expected, (x, y)
        assert vc.happens_before(x, y) == expected, (x, y)
        expected_rev = naive.happens_before(y, x)
        assert bitset.happens_before(y, x) == expected_rev, (y, x)
        assert chain.happens_before(y, x) == expected_rev, (y, x)
        assert vc.happens_before(y, x) == expected_rev, (y, x)
        concurrent = not expected and not expected_rev
        assert bitset.concurrent(x, y) == concurrent
        assert chain.concurrent(x, y) == concurrent
        assert naive.concurrent(x, y) == concurrent
        assert vc.concurrent(x, y) == concurrent
