"""Each MTEP rule establishes the ordering the paper specifies."""

import pytest

from repro.errors import TraceAnalysisOOM
from repro.hb import FULL_MODEL, HBGraph, HBModel, ablate_trace
from repro.runtime import Cluster, OpKind, sleep
from repro.trace import FullScope, Tracer


def run_traced(build, seed=0):
    cluster = Cluster(seed=seed)
    tracer = Tracer(scope=FullScope()).bind(cluster)
    build(cluster)
    result = cluster.run()
    return tracer.trace, result


def mem_ops(trace, var_suffix):
    return [
        r
        for r in trace.mem_accesses()
        if str(r.obj_id).endswith(var_suffix)
    ]


def test_fork_rule_orders_parent_write_before_child_read():
    def build(cluster):
        node = cluster.add_node("n")
        var = node.shared_var("x", 0)

        def parent():
            var.set(1)  # W before fork
            node.spawn(lambda: var.get(), name="child")

        node.spawn(parent, name="parent")

    trace, _ = run_traced(build)
    graph = HBGraph(trace)
    write = [r for r in mem_ops(trace, "n.x") if r.is_write][0]
    read = [r for r in mem_ops(trace, "n.x") if not r.is_write][0]
    assert graph.happens_before(write, read)
    assert not graph.concurrent(write, read)


def test_no_fork_rule_makes_them_concurrent():
    def build(cluster):
        node = cluster.add_node("n")
        var = node.shared_var("x", 0)

        def parent():
            var.set(1)
            node.spawn(lambda: var.get(), name="child")

        node.spawn(parent, name="parent")

    trace, _ = run_traced(build)
    graph = HBGraph(trace, model=FULL_MODEL.without("fork_join"))
    write = [r for r in mem_ops(trace, "n.x") if r.is_write][0]
    read = [r for r in mem_ops(trace, "n.x") if not r.is_write][0]
    assert graph.concurrent(write, read)


def test_join_rule_orders_child_write_before_parent_read():
    def build(cluster):
        node = cluster.add_node("n")
        var = node.shared_var("x", 0)

        def parent():
            t = node.spawn(lambda: var.set(1), name="child")
            node.join(t)
            var.get()

        node.spawn(parent, name="parent")

    trace, _ = run_traced(build)
    graph = HBGraph(trace)
    write = [r for r in mem_ops(trace, "n.x") if r.is_write][0]
    read = [r for r in mem_ops(trace, "n.x") if not r.is_write][-1]
    assert graph.happens_before(write, read)


def test_rpc_rule_orders_caller_write_before_handler_read():
    def build(cluster):
        server = cluster.add_node("server")
        client = cluster.add_node("client")
        var = server.shared_var("x", 0)
        server.rpc_server.register("probe", lambda: var.get())

        def caller():
            var.set(1)
            client.rpc("server").probe()

        client.spawn(caller, name="caller")

    trace, _ = run_traced(build)
    graph = HBGraph(trace)
    write = [r for r in mem_ops(trace, "server.x") if r.is_write][0]
    read = [r for r in mem_ops(trace, "server.x") if not r.is_write][0]
    assert graph.happens_before(write, read)


def test_rpc_rule_orders_handler_write_before_post_join_read():
    def build(cluster):
        server = cluster.add_node("server")
        client = cluster.add_node("client")
        var = server.shared_var("x", 0)
        server.rpc_server.register("mutate", lambda: var.set(1))

        def caller():
            client.rpc("server").mutate()
            var.get()

        client.spawn(caller, name="caller")

    trace, _ = run_traced(build)
    graph = HBGraph(trace)
    write = [r for r in mem_ops(trace, "server.x") if r.is_write][0]
    read = [r for r in mem_ops(trace, "server.x") if not r.is_write][0]
    assert graph.happens_before(write, read)


def test_rpc_ablation_loses_order():
    def build(cluster):
        server = cluster.add_node("server")
        client = cluster.add_node("client")
        var = server.shared_var("x", 0)
        server.rpc_server.register("probe", lambda: var.get())

        def caller():
            var.set(1)
            client.rpc("server").probe()

        client.spawn(caller, name="caller")

    trace, _ = run_traced(build)
    graph = HBGraph(ablate_trace(trace, {"rpc"}))
    write = [r for r in mem_ops(trace, "server.x") if r.is_write][0]
    read = [r for r in mem_ops(trace, "server.x") if not r.is_write][0]
    ablated = graph.trace
    w = [r for r in ablated.mem_accesses() if r.seq == write.seq][0]
    r = [r for r in ablated.mem_accesses() if r.seq == read.seq][0]
    assert graph.concurrent(w, r)


def test_socket_rule_orders_send_before_handler():
    def build(cluster):
        a = cluster.add_node("a")
        b = cluster.add_node("b")
        var = b.shared_var("x", 0)
        b.on_message("poke", lambda payload, src: var.get())

        def sender():
            var.set(1)
            a.send("b", "poke")

        a.spawn(sender, name="sender")

    trace, _ = run_traced(build)
    graph = HBGraph(trace)
    write = [r for r in mem_ops(trace, "b.x") if r.is_write][0]
    read = [r for r in mem_ops(trace, "b.x") if not r.is_write][0]
    assert graph.happens_before(write, read)


def test_push_rule_orders_update_before_watch_callback():
    def build(cluster):
        cluster.zookeeper()
        writer = cluster.add_node("writer")
        watcher = cluster.add_node("watcher")
        var = watcher.shared_var("x", 0)

        def watch_side():
            zk = watcher.zk()
            zk.create("/s", data="init")
            zk.watch("/s", lambda ev: var.get())
            zk.create("/ready")

        def write_side():
            zk = writer.zk()
            while not zk.exists("/ready"):
                sleep(2)
            var.set(1)
            zk.set_data("/s", "done")

        watcher.spawn(watch_side, name="w")
        writer.spawn(write_side, name="u")

    trace, _ = run_traced(build)
    write = [r for r in mem_ops(trace, "watcher.x") if r.is_write][0]
    read = [r for r in mem_ops(trace, "watcher.x") if not r.is_write][-1]
    graph = HBGraph(trace)
    assert graph.happens_before(write, read)
    # Without Rule-Mpush the chain is invisible (service is untraced).
    ablated_graph = HBGraph(ablate_trace(trace, {"push"}))
    w = [r for r in ablated_graph.trace.records if r.seq == write.seq][0]
    r = [r for r in ablated_graph.trace.records if r.seq == read.seq][0]
    assert ablated_graph.concurrent(w, r)


def test_event_enqueue_rule():
    def build(cluster):
        node = cluster.add_node("n")
        var = node.shared_var("x", 0)
        q = node.event_queue("q")
        q.register("go", lambda ev: var.get())

        def poster():
            var.set(1)
            q.post("go")

        node.spawn(poster, name="poster")

    trace, _ = run_traced(build)
    graph = HBGraph(trace)
    write = [r for r in mem_ops(trace, "n.x") if r.is_write][0]
    read = [r for r in mem_ops(trace, "n.x") if not r.is_write][0]
    assert graph.happens_before(write, read)


def test_handlers_on_same_thread_are_concurrent_pnreg():
    """Two handlers on one consumer thread: no program order between them
    (Rule-Pnreg) unless E-serial applies; with E-serial their creates are
    ordered by the poster's program order, so they ARE serialized."""

    def build(cluster):
        node = cluster.add_node("n")
        var = node.shared_var("x", 0)
        q = node.event_queue("q", consumers=1)
        q.register("w", lambda ev: var.set(1))
        q.register("r", lambda ev: var.get())

        def poster():
            q.post("w")
            q.post("r")

        node.spawn(poster, name="poster")

    trace, _ = run_traced(build)
    write = [r for r in mem_ops(trace, "n.x") if r.is_write][0]
    read = [r for r in mem_ops(trace, "n.x") if not r.is_write][0]

    full = HBGraph(trace)
    assert full.happens_before(write, read)  # E-serial orders them

    no_serial = HBGraph(trace, model=FULL_MODEL.without("eserial"))
    assert no_serial.concurrent(write, read)  # Pnreg alone does not


def test_eserial_not_applied_to_multi_consumer_queue():
    def build(cluster):
        node = cluster.add_node("n")
        var = node.shared_var("x", 0)
        q = node.event_queue("pool", consumers=2)
        q.register("w", lambda ev: var.set(1))
        q.register("r", lambda ev: var.get())

        def poster():
            q.post("w")
            q.post("r")

        node.spawn(poster, name="poster")

    trace, _ = run_traced(build, seed=1)
    write = [r for r in mem_ops(trace, "n.x") if r.is_write][0]
    reads = [r for r in mem_ops(trace, "n.x") if not r.is_write]
    graph = HBGraph(trace)
    assert any(graph.concurrent(write, r) for r in reads)


def test_eserial_fixpoint_chains_through_three_events():
    """e1 -> (its handler posts e2) -> e3 posted after e2 by the same
    poster; serialization must chain transitively via the fixpoint."""

    def build(cluster):
        node = cluster.add_node("n")
        var = node.shared_var("x", 0)
        q = node.event_queue("q", consumers=1)

        def h1(ev):
            var.set(1)
            q.post("e2")

        q.register("e1", h1)
        q.register("e2", lambda ev: None)
        q.register("e3", lambda ev: var.get())

        def poster():
            q.post("e1")
            q.post("e3")

        node.spawn(poster, name="poster")

    trace, _ = run_traced(build)
    graph = HBGraph(trace)
    write = [r for r in mem_ops(trace, "n.x") if r.is_write][0]
    read = [r for r in mem_ops(trace, "n.x") if not r.is_write][0]
    assert graph.happens_before(write, read)
    assert graph.edge_counts.get("Eserial", 0) >= 1


def test_pull_rule_local_loop():
    def build(cluster):
        node = cluster.add_node("n")
        flag = node.shared_var("flag", False)
        data = node.shared_var("data", None)

        def producer():
            sleep(5)
            data.set("ready")
            flag.set(True)

        def consumer():
            while not flag.get():  # polling loop
                sleep(1)
            data.get()

        node.spawn(producer, name="p")
        node.spawn(consumer, name="c")

    trace, _ = run_traced(build, seed=2)
    graph = HBGraph(trace)
    assert graph.pull_edges, "expected a local-loop pull edge"
    flag_write = [r for r in mem_ops(trace, "n.flag") if r.is_write][-1]
    data_read = [r for r in mem_ops(trace, "n.data") if not r.is_write][-1]
    assert graph.happens_before(flag_write, data_read)
    # Without the pull rule the final read is concurrent with the write.
    no_pull = HBGraph(trace, model=FULL_MODEL.without("pull"))
    assert no_pull.concurrent(flag_write, data_read)


def test_pull_rule_rpc_polling_loop():
    """The paper's Figure 2 shape: while (!getTask(jid)) over RPC."""

    def build(cluster):
        am = cluster.add_node("am")
        nm = cluster.add_node("nm")
        tasks = am.shared_dict("tasks")
        done = am.shared_var("done", False)
        am.rpc_server.register("get_task", lambda jid: tasks.get(jid))

        def register_task():
            sleep(400)
            tasks.put("j1", "payload")

        def poll():
            while nm.rpc("am").get_task("j1") is None:
                sleep(1)
            done.get()

        am.spawn(register_task, name="reg")
        nm.spawn(poll, name="poll")

    trace, _ = run_traced(build, seed=3)
    graph = HBGraph(trace)
    kinds = {e.kind for e in graph.pull_edges}
    assert "rpc-loop" in kinds
    put = [r for r in mem_ops(trace, "am.tasks") if r.is_write][0]
    done_read = [r for r in mem_ops(trace, "am.done")][-1]
    assert graph.happens_before(put, done_read)


def test_memory_budget_oom():
    def build(cluster):
        node = cluster.add_node("n")
        var = node.shared_var("x", 0)
        for i in range(3):
            node.spawn(lambda: var.set(1), name=f"w{i}")

    trace, _ = run_traced(build)
    graph = HBGraph(trace, memory_budget=1)
    a, b = trace.mem_accesses()[:2]
    with pytest.raises(TraceAnalysisOOM):
        graph.happens_before(a, b)
