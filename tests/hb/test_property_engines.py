"""Unified differential harness: five engines, one HB relation, SP ⊆ HB.

Random valid schedules (``tests/hb/conftest.py``: threads, exactly-once
messages, well-nested locks) drive every reachability engine the
detector can use — the bit-set graph, the chain-compressed graph, the
naive DFS, vector clocks, and the streaming segment-clock state — plus
the sync-preserving order on top.  The invariants:

* all five engines agree on ``happens_before`` for every record pair
  (on lock-free schedules, where the SP order adds nothing);
* the SP order *contains* the HB order, so SP-concurrent ⇒
  HB-concurrent: the sound tier can only shrink the candidate set;
* on lock-free schedules SP and HB coincide exactly;
* SP detection keeps the HB candidate list and marks a subset sound;
* the SP tier still recalls every planted race of a generated workload
  (the soundness restriction never drops a real, planted bug).
"""

import itertools

import pytest
from conftest import STEPS, build_trace, lockfree, pair_set
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detect import (
    build_sp_graph,
    detect_races,
    detect_races_sync_preserving,
)
from repro.detect.streaming import detect_races_streaming
from repro.detect.syncpres import annotate_sync_preserving
from repro.hb import HBGraph, NaiveReachability, VectorClockEngine
from repro.hb.incremental import (
    STREAM_UNSUPPORTED_FAMILIES,
    StreamingHBState,
)
from repro.hb.model import FULL_MODEL
from repro.workload import generate_workload

#: Whole-trace inference rules (eserial, pull) are out: the streaming
#: engine cannot run them, and pull would let the generator's memory
#: accesses manufacture HB edges behind the schedule's back.
HARNESS_MODEL = FULL_MODEL.without(*STREAM_UNSUPPORTED_FAMILIES)


@settings(max_examples=200, deadline=None)
@given(recipe=STEPS)
def test_five_engines_agree_on_shared_relation(recipe):
    """bitset == chain == naive DFS == vector clocks == streaming
    clocks == SP graph, pairwise, on lock-free schedules."""
    trace = build_trace(lockfree(recipe))
    bitset = HBGraph(trace, model=HARNESS_MODEL, reach_backend="bitset")
    chain = HBGraph(trace, model=HARNESS_MODEL, reach_backend="chain")
    naive = NaiveReachability(bitset)
    vc = VectorClockEngine(bitset)
    sp = build_sp_graph(trace, model=HARNESS_MODEL)  # no locks: SP == HB

    for x, y in itertools.permutations(trace.records, 2):
        expected = naive.happens_before(x, y)
        assert bitset.happens_before(x, y) == expected, (x.seq, y.seq)
        assert chain.happens_before(x, y) == expected, (x.seq, y.seq)
        assert vc.happens_before(x, y) == expected, (x.seq, y.seq)
        assert sp.happens_before(x, y) == expected, (x.seq, y.seq)

    # The streaming engine answers online: right after a record arrives,
    # ordered_before(pos(x), seg(new)) must match the offline graph for
    # every earlier record x.
    state = StreamingHBState(
        model=HARNESS_MODEL,
        expected_streams={r.tid for r in trace.records},
    )
    positions = {}
    for record in trace.records:
        pos = state.observe(record)
        for earlier in trace.records:
            if earlier.seq >= record.seq:
                break
            a_seg, a_count = positions[earlier.seq]
            assert state.ordered_before(
                a_seg, a_count, record.segment
            ) == bitset.happens_before(earlier, record), (
                earlier.seq,
                record.seq,
            )
        positions[record.seq] = pos


@settings(max_examples=200, deadline=None)
@given(recipe=STEPS)
def test_sp_order_contains_hb_order(recipe):
    """With locks in play: HB-ordered ⇒ SP-ordered for every pair, so
    SP-concurrent ⇒ HB-concurrent (SP ⊆ HB on the race side)."""
    trace = build_trace(recipe)
    hb = HBGraph(trace, model=HARNESS_MODEL)
    sp = build_sp_graph(trace, model=HARNESS_MODEL)
    for x, y in itertools.permutations(trace.records, 2):
        if hb.happens_before(x, y):
            assert sp.happens_before(x, y), (x.seq, y.seq)
    for x, y in itertools.combinations(trace.records, 2):
        if sp.concurrent(x, y):
            assert hb.concurrent(x, y), (x.seq, y.seq)


@settings(max_examples=200, deadline=None)
@given(recipe=STEPS)
def test_sp_detection_marks_a_subset_sound(recipe):
    """SP detection returns the *same* candidate list as HB detection
    and flags a subset as sp-sound; on lock-free schedules the subset
    is everything."""
    trace = build_trace(recipe)
    hb = detect_races(trace, model=HARNESS_MODEL)
    sp = detect_races_sync_preserving(trace, model=HARNESS_MODEL)
    hb_pairs = pair_set(hb.candidates)
    assert pair_set(sp.candidates) == hb_pairs
    assert sp.sp_pairs <= hb_pairs

    free = build_trace(lockfree(recipe))
    sp_free = detect_races_sync_preserving(free, model=HARNESS_MODEL)
    assert sp_free.sp_pairs == pair_set(sp_free.candidates)


@settings(max_examples=50, deadline=None)
@given(
    recipe=STEPS,
    windows=st.tuples(
        st.sampled_from([1, 3]), st.sampled_from([7, 10_000])
    ),
)
def test_sp_subset_is_window_invariant(recipe, windows):
    """The sound subset is a property of the trace, not of how it was
    streamed: annotating streaming results obtained under different
    compaction windows yields the identical sp_pairs set."""
    trace = build_trace(recipe)
    streams = {r.tid for r in trace.records}
    subsets = []
    for window in windows:
        result = detect_races_streaming(
            records=trace.records,
            model=HARNESS_MODEL,
            window=window,
            expected_streams=streams,
        )
        detection = result.to_detection(trace)
        annotate_sync_preserving(detection, model=HARNESS_MODEL)
        subsets.append(detection.sp_pairs)
    assert subsets[0] == subsets[1]


def test_common_lock_pair_is_hb_candidate_but_not_sp():
    """The deterministic core of the tier: both writes under the same
    lock — DCatch's HB model reports the pair (locks are not ordering),
    the SP closure orders it out of the sound set."""
    recipe = [
        (0, "acquire", 0),
        (0, "write", 0),
        (0, "release", 0),
        (1, "acquire", 0),
        (1, "write", 0),
        (1, "release", 0),
    ]
    trace = build_trace(recipe)
    detection = detect_races_sync_preserving(trace, model=HARNESS_MODEL)
    writes = {(1, 4)}  # the two MEM_WRITE seqs
    assert pair_set(detection.candidates) == writes
    assert detection.sp_pairs == set()
    assert detection.candidate_soundness(detection.candidates[0]) == (
        "hb-predicted"
    )


@pytest.fixture(scope="module")
def generated_minizk(tmp_path_factory):
    out = tmp_path_factory.mktemp("gen-sp")
    return generate_workload("minizk", "small", 7, str(out))


def test_sp_recalls_planted_races(generated_minizk):
    """SP ⊇ ground truth: every race the generator planted survives the
    sync-preserving restriction — soundness costs no planted recall."""
    from repro.trace.salvage import salvage_trace

    trace, _report = salvage_trace(generated_minizk.wal_dir)
    detection = detect_races_sync_preserving(trace)
    planted = {
        frozenset((r["first_seq"], r["second_seq"]))
        for r in generated_minizk.planted_races
    }
    sound = {frozenset(p) for p in detection.sp_pairs}
    assert planted <= sound
