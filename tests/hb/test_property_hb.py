"""Property-based tests: HB graph invariants over random workloads."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hb import HBGraph, NaiveReachability
from repro.runtime import Cluster, sleep
from repro.trace import FullScope, Tracer

# A random workload recipe: a list of per-thread scripts, each script a
# list of primitive actions against shared state.
ACTIONS = st.sampled_from(
    ["set_a", "get_a", "set_b", "get_b", "post_event", "send_msg", "sleep"]
)
SCRIPTS = st.lists(
    st.lists(ACTIONS, min_size=1, max_size=6), min_size=1, max_size=4
)


def _build_workload(cluster, scripts):
    n1 = cluster.add_node("n1")
    n2 = cluster.add_node("n2")
    var_a = n1.shared_var("a", 0)
    var_b = n1.shared_var("b", 0)
    queue = n1.event_queue("q", consumers=1)
    queue.register("e", lambda ev: var_b.get())
    n2.on_message("m", lambda payload, src: None)

    def make_body(script):
        def body():
            for action in script:
                if action == "set_a":
                    var_a.set(1)
                elif action == "get_a":
                    var_a.get()
                elif action == "set_b":
                    var_b.set(2)
                elif action == "get_b":
                    var_b.get()
                elif action == "post_event":
                    queue.post("e")
                elif action == "send_msg":
                    n1.send("n2", "m", None)
                elif action == "sleep":
                    sleep(2)

        return body

    for i, script in enumerate(scripts):
        n1.spawn(make_body(script), name=f"w{i}")


def _trace_for(scripts, seed):
    cluster = Cluster(seed=seed, max_steps=20_000)
    tracer = Tracer(scope=FullScope()).bind(cluster)
    _build_workload(cluster, scripts)
    result = cluster.run()
    assert not result.harmful
    return tracer.trace


@settings(max_examples=25, deadline=None)
@given(scripts=SCRIPTS, seed=st.integers(0, 5))
def test_hb_is_strict_partial_order(scripts, seed):
    trace = _trace_for(scripts, seed)
    graph = HBGraph(trace)
    records = trace.records[:: max(1, len(trace.records) // 30)]
    for x in records:
        assert not graph.happens_before(x, x)
    for x, y in itertools.combinations(records, 2):
        assert not (graph.happens_before(x, y) and graph.happens_before(y, x))
    for x, y, z in itertools.combinations(records[:12], 3):
        if graph.happens_before(x, y) and graph.happens_before(y, z):
            assert graph.happens_before(x, z)


@settings(max_examples=20, deadline=None)
@given(scripts=SCRIPTS, seed=st.integers(0, 5))
def test_hb_edges_respect_execution_order(scripts, seed):
    """Predicted HB never contradicts the observed schedule: if a
    happens-before b, then a executed before b in this run."""
    trace = _trace_for(scripts, seed)
    graph = HBGraph(trace)
    records = trace.records[:: max(1, len(trace.records) // 25)]
    for x, y in itertools.combinations(records, 2):
        if graph.happens_before(x, y):
            assert x.seq < y.seq
        if graph.happens_before(y, x):
            assert y.seq < x.seq


@settings(max_examples=15, deadline=None)
@given(scripts=SCRIPTS, seed=st.integers(0, 3))
def test_bitset_engine_matches_naive(scripts, seed):
    trace = _trace_for(scripts, seed)
    graph = HBGraph(trace)
    naive = NaiveReachability(graph)
    records = trace.records[:: max(1, len(trace.records) // 20)]
    for x, y in itertools.combinations(records, 2):
        assert graph.happens_before(x, y) == naive.happens_before(x, y)


@settings(max_examples=15, deadline=None)
@given(scripts=SCRIPTS)
def test_same_seed_same_trace(scripts):
    t1 = _trace_for(scripts, seed=1)
    t2 = _trace_for(scripts, seed=1)
    assert [(r.kind, r.tid, r.segment) for r in t1.records] == [
        (r.kind, r.tid, r.segment) for r in t2.records
    ]
