"""HB chain explanation: labeled paths between ordered operations."""

from repro.hb import ChainExplainer, HBGraph
from repro.runtime import Cluster, sleep
from repro.trace import FullScope, Tracer


def _run(build, seed=0):
    cluster = Cluster(seed=seed)
    tracer = Tracer(scope=FullScope()).bind(cluster)
    build(cluster)
    cluster.run()
    return tracer.trace


def _mem(trace, suffix, write):
    return [
        r
        for r in trace.mem_accesses()
        if str(r.obj_id).endswith(suffix) and r.is_write == write
    ]


def test_fork_chain_explained():
    def build(cluster):
        node = cluster.add_node("n")
        var = node.shared_var("x", 0)

        def parent():
            var.set(1)
            node.spawn(lambda: var.get(), name="child")

        node.spawn(parent, name="parent")

    trace = _run(build)
    graph = HBGraph(trace)
    explainer = ChainExplainer(graph)
    write = _mem(trace, "n.x", True)[0]
    read = _mem(trace, "n.x", False)[0]
    rules = explainer.rules_used(write, read)
    assert "Tfork" in rules
    text = explainer.render(write, read)
    assert "=Tfork=>" in text


def test_rpc_chain_explained():
    def build(cluster):
        server = cluster.add_node("server")
        client = cluster.add_node("client")
        var = server.shared_var("x", 0)
        server.rpc_server.register("probe", lambda: var.get())

        def caller():
            var.set(1)
            client.rpc("server").probe()

        client.spawn(caller, name="caller")

    trace = _run(build)
    explainer = ChainExplainer(HBGraph(trace))
    write = _mem(trace, "server.x", True)[0]
    read = _mem(trace, "server.x", False)[0]
    rules = explainer.rules_used(write, read)
    assert "Mrpc" in rules


def test_concurrent_pair_yields_no_chain():
    def build(cluster):
        node = cluster.add_node("n")
        var = node.shared_var("x", 0)
        node.spawn(lambda: var.set(1), name="a")
        node.spawn(lambda: var.set(2), name="b")

    trace = _run(build)
    explainer = ChainExplainer(HBGraph(trace))
    w1, w2 = _mem(trace, "n.x", True)[:2]
    assert explainer.explain(w1, w2) is None
    assert "CONCURRENT" in explainer.render(w1, w2)


def test_figure3_chain_uses_all_rule_families():
    """The full Figure 3 chain: Tfork + Mrpc + Eenq + Mpush in one path."""
    from repro.systems import workload_by_id

    workload = workload_by_id("HB-4539")
    cluster = workload.cluster(0, churn=False)
    tracer = Tracer(scope=FullScope()).bind(cluster)
    cluster.run()
    trace = tracer.trace
    explainer = ChainExplainer(HBGraph(trace))
    write = next(
        r
        for r in trace.mem_accesses()
        if r.is_write
        and str(r.obj_id).endswith("regions_in_transition")
        and r.site
        and "split_table" in r.site.func
    )
    read = next(
        r
        for r in trace.mem_accesses()
        if not r.is_write
        and str(r.obj_id).endswith("regions_in_transition")
        and r.site
        and "on_region_state_change" in r.site.func
    )
    rules = explainer.rules_used(write, read)
    for family in ("Tfork", "Mrpc", "Eenq", "Mpush"):
        assert family in rules, f"{family} missing from chain {rules}"


def test_same_segment_chain_is_program_order():
    def build(cluster):
        node = cluster.add_node("n")
        var = node.shared_var("x", 0)

        def worker():
            var.set(1)
            var.get()

        node.spawn(worker, name="w")

    trace = _run(build)
    explainer = ChainExplainer(HBGraph(trace))
    write = _mem(trace, "n.x", True)[0]
    read = _mem(trace, "n.x", False)[0]
    hops = explainer.explain(write, read)
    assert hops is not None
    assert [h.rule for h in hops] == ["P"]
