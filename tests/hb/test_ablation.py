"""Trace-level ablation mechanics."""

import pytest

from repro.hb import FAMILY_KINDS, ablate_trace
from repro.runtime import Cluster, OpKind
from repro.trace import FullScope, Tracer


def _trace():
    cluster = Cluster(seed=0)
    tracer = Tracer(scope=FullScope()).bind(cluster)
    node = cluster.add_node("n")
    var = node.shared_var("x", 0)
    q = node.event_queue("q")
    q.register("e", lambda ev: var.set(1))

    def main():
        var.get()
        q.post("e")

    node.spawn(main, name="main")
    cluster.run()
    return tracer.trace


def test_unknown_family_rejected():
    with pytest.raises(ValueError):
        ablate_trace(_trace(), {"nonsense"})


def test_event_family_drops_records_and_collapses_segments():
    trace = _trace()
    ablated = ablate_trace(trace, {"event"})
    kinds = {r.kind for r in ablated.records}
    assert not (kinds & FAMILY_KINDS["event"])
    # The handler's write collapsed into the consumer thread's base
    # segment: for each tid, all records now share one segment.
    segs_per_tid = {}
    for record in ablated.records:
        segs_per_tid.setdefault(record.tid, set()).add(record.segment)
    for tid, segs in segs_per_tid.items():
        assert len(segs) == 1


def test_non_ablated_records_survive_unchanged():
    trace = _trace()
    ablated = ablate_trace(trace, {"push"})  # nothing uses push here
    assert len(ablated) == len(trace)
    assert [r.seq for r in ablated.records] == [r.seq for r in trace.records]


def test_multiple_families_at_once():
    trace = _trace()
    ablated = ablate_trace(trace, {"event", "thread"})
    kinds = {r.kind for r in ablated.records}
    assert OpKind.EVENT_CREATE not in kinds
    assert OpKind.THREAD_BEGIN not in kinds
    assert any(r.kind is OpKind.MEM_WRITE for r in ablated.records)


def test_ablated_trace_has_new_name():
    trace = _trace()
    ablated = ablate_trace(trace, {"rpc"})
    assert "ablate" in ablated.name
