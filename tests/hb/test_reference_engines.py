"""Differential testing: bit-set engine vs naive DFS vs vector clocks."""

import itertools

import pytest

from repro.hb import HBGraph, HBModel, NaiveReachability, VectorClockEngine
from repro.runtime import Cluster, sleep
from repro.trace import FullScope, Tracer


def build_mixed_workload(cluster):
    """A workload exercising threads, RPC, events, sockets, and ZK."""
    cluster.zookeeper()
    a = cluster.add_node("a")
    b = cluster.add_node("b")
    shared = a.shared_var("s", 0)
    remote = b.shared_var("r", 0)
    q = b.event_queue("q")
    q.register("bump", lambda ev: remote.set(ev.payload))
    b.rpc_server.register("poke", lambda v: remote.get())
    b.on_message("note", lambda payload, src: q.post("bump", payload))

    def worker_a():
        zk = a.zk()
        shared.set(1)
        a.send("b", "note", 7)
        a.rpc("b").poke(1)
        zk.create("/flag", data=1)
        shared.get()

    def worker_b():
        zk = b.zk()
        while not zk.exists("/flag"):
            sleep(2)
        remote.set(5)

    def extra():
        t = a.spawn(lambda: shared.set(9), name="inner")
        a.join(t)
        shared.get()

    a.spawn(worker_a, name="wa")
    b.spawn(worker_b, name="wb")
    a.spawn(extra, name="extra")


def _trace(seed):
    cluster = Cluster(seed=seed)
    tracer = Tracer(scope=FullScope()).bind(cluster)
    build_mixed_workload(cluster)
    cluster.run()
    return tracer.trace


def test_engines_agree_on_all_pairs():
    for seed in (0, 1, 2):
        trace = _trace(seed)
        graph = HBGraph(trace)
        naive = NaiveReachability(graph)
        vc = VectorClockEngine(graph)
        records = trace.records
        sample = records[:: max(1, len(records) // 120)]
        for x, y in itertools.combinations(sample, 2):
            expected = naive.happens_before(x, y)
            assert graph.happens_before(x, y) == expected, (x, y)
            assert vc.happens_before(x, y) == expected, (x, y)


def test_vector_clock_dimensions_grow_with_handlers():
    trace = _trace(0)
    graph = HBGraph(trace)
    vc = VectorClockEngine(graph)
    # One dimension per segment: more handler invocations, more dimensions
    # (the cost the paper avoids with bit sets).
    assert vc.dimensions >= 5


def test_vector_clocks_require_program_order():
    """The vector-clock encoding assumes per-segment chains, which only
    program-order edges guarantee: constructing it on an ablated graph
    must fail loudly (or warn, when explicitly opted into)."""
    trace = _trace(0)
    graph = HBGraph(trace, model=HBModel(program_order=False))
    with pytest.raises(ValueError, match="program.order"):
        VectorClockEngine(graph)
    with pytest.warns(UserWarning, match="program.order"):
        vc = VectorClockEngine(graph, strict=False)
    assert vc.dimensions >= 1  # the unsound engine is still usable


def test_hb_is_a_strict_partial_order():
    trace = _trace(1)
    graph = HBGraph(trace)
    records = trace.records[:: max(1, len(trace.records) // 60)]
    for x in records:
        assert not graph.happens_before(x, x)
    for x, y in itertools.combinations(records, 2):
        assert not (graph.happens_before(x, y) and graph.happens_before(y, x))
    # Transitivity on the sample.
    for x, y, z in itertools.combinations(records, 3):
        if graph.happens_before(x, y) and graph.happens_before(y, z):
            assert graph.happens_before(x, z)


def test_edges_point_forward_in_sequence():
    trace = _trace(2)
    graph = HBGraph(trace)
    for i, succs in enumerate(graph._succ):
        for j in succs:
            assert graph.backbone[i].seq < graph.backbone[j].seq
