"""Shared trace generator for the HB/SP property harnesses.

``STEPS`` draws small multi-threaded schedules (4 segments) mixing
memory accesses, exactly-once socket messages, and lock critical
sections; ``build_trace`` turns one into a valid ``Trace``:

* every send gets a fresh tag and each recv pairs with the *oldest*
  outstanding tag, so the (send, recv) matching is exactly-once and a
  recv never precedes its send — like a real timeline;
* locks obey global mutual exclusion: an acquire while another segment
  holds the lock is dropped (no real schedule could take it there), a
  same-segment re-acquire nests (reentrancy), and only the holder may
  release.

Steps the discipline forbids are *skipped*, not rejected, which keeps
the strategy shrinking-friendly: hypothesis can delete any prefix of a
failing recipe and still get a valid trace.
"""

from hypothesis import strategies as st

from repro.ids import CallStack
from repro.runtime.ops import OpEvent, OpKind
from repro.trace.store import Trace

ACTIONS = ("read", "write", "send", "recv", "acquire", "release")

#: One step per entry: (segment 0-3, action, pick).  ``pick`` selects
#: one of two memory locations or one of two locks.
STEPS = st.lists(
    st.tuples(st.integers(0, 3), st.sampled_from(ACTIONS), st.integers(0, 1)),
    min_size=2,
    max_size=30,
)


def lockfree(recipe):
    """The same schedule with the lock operations deleted."""
    return [s for s in recipe if s[1] not in ("acquire", "release")]


def build_trace(recipe, name="prop"):
    trace = Trace(name=name)
    outstanding = []
    fresh = 0
    holder = {}  # lock obj_id -> [holding segment, reentrancy depth]
    seq = 0
    for segment, action, pick in recipe:
        location = None
        if action == "send":
            kind, obj = OpKind.SOCK_SEND, f"m{fresh}"
            outstanding.append(obj)
            fresh += 1
        elif action == "recv":
            if not outstanding:
                continue
            kind, obj = OpKind.SOCK_RECV, outstanding.pop(0)
        elif action == "acquire":
            obj = f"l{pick}"
            held = holder.get(obj)
            if held is not None and held[0] != segment:
                continue  # busy in another segment: unschedulable here
            if held is None:
                holder[obj] = [segment, 1]
            else:
                held[1] += 1
            kind = OpKind.LOCK_ACQUIRE
        elif action == "release":
            obj = f"l{pick}"
            held = holder.get(obj)
            if held is None or held[0] != segment:
                continue  # only the holder releases
            held[1] -= 1
            if held[1] == 0:
                del holder[obj]
            kind = OpKind.LOCK_RELEASE
        else:
            kind = OpKind.MEM_READ if action == "read" else OpKind.MEM_WRITE
            obj = f"x{pick}"
            location = (1, f"x{pick}")
        trace.append(
            OpEvent(
                seq=seq,
                kind=kind,
                obj_id=obj,
                node="n",
                tid=segment,
                thread_name=f"t{segment}",
                segment=segment,
                callstack=CallStack(),
                location=location,
            )
        )
        seq += 1
    return trace


def pair_set(candidates):
    return {(c.first.seq, c.second.seq) for c in candidates}
