"""DOT export of the HB graph."""

from repro.hb import HBGraph, graph_to_dot
from repro.runtime import Cluster
from repro.trace import FullScope, Tracer


def _graph():
    cluster = Cluster(seed=0)
    tracer = Tracer(scope=FullScope()).bind(cluster)
    a = cluster.add_node("a")
    b = cluster.add_node("b")
    b.rpc_server.register("ping", lambda: "pong")
    q = a.event_queue("q")
    q.register("e", lambda ev: None)

    def worker():
        a.rpc("b").ping()
        q.post("e")

    a.spawn(worker, name="w")
    cluster.run()
    return HBGraph(tracer.trace)


def test_dot_output_structure():
    dot = graph_to_dot(_graph())
    assert dot.startswith("digraph hb {")
    assert dot.rstrip().endswith("}")
    assert 'label="Mrpc"' in dot
    assert 'label="Eenq"' in dot
    assert "->" in dot


def test_dot_respects_node_cap():
    graph = _graph()
    dot = graph_to_dot(graph, max_nodes=3)
    node_lines = [l for l in dot.splitlines() if l.strip().startswith("n") and "[label=" in l and "->" not in l]
    assert len(node_lines) <= 3
