"""Property-based tests: sampled tracing over random schedules.

Replays the shared ``STEPS`` schedules through a real ``Tracer`` with a
sampler attached and checks the sampling contract:

* the sampled trace is a subset of the full one (never invents records);
* every HB-related and lock record survives — only ``MEM_KINDS`` are
  thinned, so the happens-before graph is unchanged;
* a fixed ``(policy, seed)`` pair reproduces byte-identical output;
* rate 1.0 is a no-op: byte-identical to the unsampled tracer.
"""

from types import SimpleNamespace

from conftest import STEPS, build_trace
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.ops import MEM_KINDS
from repro.trace import FullScope, Tracer, build_sampler

SPECS = st.sampled_from(
    [
        "rate:0.4",
        "budget:2",
        "epoch:2:4",
        "reservoir:2",
        "budget:1+rate:0.2",
        "0.3",
    ]
)
SEEDS = st.integers(0, 7)


def _replay(trace, sampler=None):
    """Feed a prebuilt trace's records through a fresh Tracer."""
    tracer = Tracer(scope=FullScope(), sampler=sampler)
    tracer.bind(
        SimpleNamespace(
            nodes={"n": SimpleNamespace(traced=True)},
            add_interceptor=lambda interceptor: None,
        )
    )
    for event in trace:
        tracer.after(event)
    return tracer.trace


@given(recipe=STEPS, spec=SPECS, seed=SEEDS)
@settings(max_examples=60, deadline=None)
def test_sampled_trace_is_subset_retaining_all_hb_ops(recipe, spec, seed):
    full = build_trace(recipe)
    sampled = _replay(full, build_sampler(spec, seed))
    full_seqs = {r.seq for r in full}
    sampled_seqs = {r.seq for r in sampled}
    assert sampled_seqs <= full_seqs
    hb_seqs = {r.seq for r in full if r.kind not in MEM_KINDS}
    assert hb_seqs <= sampled_seqs
    # Everything dropped was a memory access.
    dropped = full_seqs - sampled_seqs
    kinds = {r.seq: r.kind for r in full}
    assert all(kinds[seq] in MEM_KINDS for seq in dropped)


@given(recipe=STEPS, spec=SPECS, seed=SEEDS)
@settings(max_examples=40, deadline=None)
def test_fixed_policy_and_seed_are_byte_identical(recipe, spec, seed):
    full = build_trace(recipe)
    first = _replay(full, build_sampler(spec, seed))
    second = _replay(full, build_sampler(spec, seed))
    assert first.dump_thread_files() == second.dump_thread_files()


@given(recipe=STEPS)
@settings(max_examples=40, deadline=None)
def test_rate_one_is_byte_identical_to_unsampled(recipe):
    full = build_trace(recipe)
    plain = _replay(full)
    sampled = _replay(full, build_sampler("1.0"))
    assert sampled.sampled is False
    assert sampled.dump_thread_files() == plain.dump_thread_files()
