"""Node crash semantics."""

from repro.errors import RpcError
from repro.runtime import Cluster, sleep


def test_messages_to_crashed_node_are_dropped():
    cluster = Cluster(seed=0)
    a = cluster.add_node("a")
    b = cluster.add_node("b")
    got = []
    b.on_message("n", lambda p, s: got.append(p))

    def sender():
        a.send("b", "n", 1)
        # Let b's dispatch thread drain the first message before the
        # crash: a crashing node loses whatever is still in its inbox.
        sleep(2)
        b.crash()
        a.send("b", "n", 2)

    a.spawn(sender, name="s")
    result = cluster.run()
    assert result.completed
    assert got == [1]
    assert b.sockets.dropped == 1


def test_rpc_to_crashed_node_raises_immediately():
    cluster = Cluster(seed=0)
    a = cluster.add_node("a")
    b = cluster.add_node("b")
    b.rpc_server.register("ping", lambda: "pong")
    outcomes = []

    def caller():
        outcomes.append(a.rpc("b").ping())
        b.crash()
        try:
            a.rpc("b").ping()
        except RpcError as exc:
            outcomes.append("refused")

    a.spawn(caller, name="c")
    result = cluster.run()
    assert result.completed
    assert outcomes == ["pong", "refused"]


def test_survivors_detect_crash_via_timeout_pattern():
    """The standard pattern: poll with a retry budget, then give up."""
    cluster = Cluster(seed=0)
    a = cluster.add_node("a")
    b = cluster.add_node("b")
    b.rpc_server.register("health", lambda: "ok")
    state = {}

    def chaos():
        sleep(10)
        b.crash()

    def prober():
        failures = 0
        for _ in range(6):
            try:
                a.rpc("b").health()
                failures = 0
            except RpcError:
                failures += 1
                if failures >= 2:
                    state["declared_dead"] = True
                    a.log.warn("peer b declared dead")
                    return
            sleep(5)

    a.spawn(prober, name="prober")
    a.spawn(chaos, name="chaos")
    result = cluster.run()
    assert result.completed
    assert state.get("declared_dead")
