"""Condition variables and semaphores."""

import pytest

from repro.runtime import Cluster, SimCondition, SimSemaphore, sleep
from repro.runtime.locks import SimLock


def test_condition_wait_notify():
    cluster = Cluster(seed=0)
    node = cluster.add_node("n")
    lock = node.lock("m")
    cond = SimCondition(lock)
    state = {"ready": False}
    log = []

    def consumer():
        with lock:
            cond.wait_for(lambda: state["ready"])
            log.append("consumed")

    def producer():
        sleep(10)
        with lock:
            state["ready"] = True
            cond.notify_all()
        log.append("produced")

    node.spawn(consumer, name="c")
    node.spawn(producer, name="p")
    result = cluster.run()
    assert result.completed
    assert "consumed" in log and "produced" in log


def test_condition_wait_requires_lock():
    cluster = Cluster(seed=0)
    node = cluster.add_node("n")
    lock = node.lock("m")
    cond = SimCondition(lock)

    def bad():
        cond.wait()

    node.spawn(bad, name="bad")
    result = cluster.run()
    assert result.harmful  # SchedulerError surfaces as uncaught


def test_condition_notify_wakes_all_waiters():
    cluster = Cluster(seed=2)
    node = cluster.add_node("n")
    lock = node.lock("m")
    cond = SimCondition(lock)
    state = {"go": False}
    woken = []

    def waiter(tag):
        def body():
            with lock:
                cond.wait_for(lambda: state["go"])
                woken.append(tag)

        return body

    for tag in ("w1", "w2", "w3"):
        node.spawn(waiter(tag), name=tag)

    def notifier():
        sleep(15)
        with lock:
            state["go"] = True
            cond.notify_all()

    node.spawn(notifier, name="notify")
    result = cluster.run()
    assert result.completed
    assert sorted(woken) == ["w1", "w2", "w3"]


def test_semaphore_bounds_concurrency():
    cluster = Cluster(seed=5)
    node = cluster.add_node("n")
    sem = SimSemaphore(cluster, "pool", permits=2)
    active = node.shared_counter("active")
    peak = {"value": 0}

    def worker():
        with sem:
            count = active.increment()
            peak["value"] = max(peak["value"], count)
            sleep(5)
            active.increment(-1)

    for i in range(5):
        node.spawn(worker, name=f"w{i}")
    result = cluster.run()
    assert result.completed
    assert peak["value"] <= 2


def test_semaphore_zero_permits_blocks_until_release():
    cluster = Cluster(seed=0)
    node = cluster.add_node("n")
    sem = SimSemaphore(cluster, "gate", permits=0)
    log = []

    def waiter():
        sem.acquire()
        log.append("entered")

    def releaser():
        sleep(10)
        log.append("releasing")
        sem.release()

    node.spawn(waiter, name="w")
    node.spawn(releaser, name="r")
    result = cluster.run()
    assert result.completed
    assert log == ["releasing", "entered"]
