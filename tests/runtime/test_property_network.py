"""Property-based tests for the network fault policies."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.network import Delivery, FlakyNetwork, ReliableNetwork


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(0, 1000),
    max_delay=st.integers(0, 50),
    drop=st.floats(min_value=0.0, max_value=1.0),
)
def test_flaky_network_is_deterministic_per_seed(seed, max_delay, drop):
    def plans(policy):
        return [
            (d.deliver, d.delay)
            for d in (
                policy.plan("a", "b", "x"),
                policy.plan("b", "a", "y"),
                policy.plan("a", "c", "x"),
            )
        ]

    first = plans(FlakyNetwork(seed=seed, max_delay=max_delay, drop_probability=drop))
    second = plans(FlakyNetwork(seed=seed, max_delay=max_delay, drop_probability=drop))
    assert first == second


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 100), max_delay=st.integers(0, 30))
def test_delays_bounded(seed, max_delay):
    policy = FlakyNetwork(seed=seed, max_delay=max_delay)
    for _ in range(20):
        delivery = policy.plan("a", "b", "v")
        assert delivery.deliver
        assert 0 <= delivery.delay <= max_delay


@settings(max_examples=30, deadline=None)
@given(
    group_a=st.sets(st.sampled_from(["a", "b", "c"]), min_size=1),
    group_b=st.sets(st.sampled_from(["x", "y"]), min_size=1),
)
def test_partitions_are_symmetric(group_a, group_b):
    policy = FlakyNetwork(seed=0)
    policy.partition(group_a, group_b)
    for a in group_a:
        for b in group_b:
            assert policy.is_partitioned(a, b)
            assert policy.is_partitioned(b, a)
            assert not policy.plan(a, b, "v").deliver
            assert not policy.plan(b, a, "v").deliver
    policy.heal()
    for a in group_a:
        for b in group_b:
            assert policy.plan(a, b, "v").deliver


def test_protected_verbs_never_dropped():
    policy = FlakyNetwork(seed=0, drop_probability=1.0)
    for _ in range(10):
        assert policy.plan("a", "b", "zk-notify").deliver
        assert not policy.plan("a", "b", "anything-else").deliver


def test_drop_probability_validation():
    import pytest

    with pytest.raises(ValueError):
        FlakyNetwork(drop_probability=1.5)


def test_reliable_network_never_interferes():
    policy = ReliableNetwork()
    for _ in range(5):
        delivery = policy.plan("a", "b", "v")
        assert delivery == Delivery(deliver=True, delay=0)
