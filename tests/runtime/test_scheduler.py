"""Scheduler fundamentals: determinism, blocking, failure plumbing."""

import pytest

from repro.errors import SimAbort
from repro.runtime import Cluster, FailureKind, sleep


def test_single_thread_runs_to_completion():
    cluster = Cluster(seed=1)
    node = cluster.add_node("n1")
    log = []

    def work():
        log.append("ran")

    node.spawn(work, name="worker")
    result = cluster.run()
    assert log == ["ran"]
    assert result.completed
    assert not result.harmful


def test_two_threads_interleave_shared_counter():
    cluster = Cluster(seed=7)
    node = cluster.add_node("n1")
    counter = node.shared_counter("c")

    def bump():
        for _ in range(5):
            counter.increment()

    node.spawn(bump, name="a")
    node.spawn(bump, name="b")
    result = cluster.run()
    assert result.completed
    # Unsynchronized increments may lose updates but never exceed 10.
    assert 2 <= counter.peek() <= 10


def test_determinism_same_seed_same_schedule():
    def build_and_run(seed):
        cluster = Cluster(seed=seed)
        node = cluster.add_node("n1")
        order = []

        def worker(tag):
            def body():
                for _ in range(3):
                    order.append(tag)
                    node.shared_var(f"v{tag}").set(tag)

            return body

        node.spawn(worker("a"), name="a")
        node.spawn(worker("b"), name="b")
        cluster.run()
        return order

    assert build_and_run(42) == build_and_run(42)


def test_different_seeds_can_differ():
    schedules = set()
    for seed in range(8):
        cluster = Cluster(seed=seed)
        node = cluster.add_node("n1")
        order = []

        def make(tag, var):
            def body():
                for _ in range(4):
                    order.append(tag)
                    var.set(tag)

            return body

        va = node.shared_var("va")
        vb = node.shared_var("vb")
        node.spawn(make("a", va), name="a")
        node.spawn(make("b", vb), name="b")
        cluster.run()
        schedules.add(tuple(order))
    assert len(schedules) > 1


def test_sleep_advances_logical_clock():
    cluster = Cluster(seed=0)
    node = cluster.add_node("n1")
    seen = {}

    def sleeper():
        sleep(50)
        seen["clock"] = cluster.scheduler.clock

    node.spawn(sleeper, name="s")
    cluster.run()
    assert seen["clock"] >= 50


def test_abort_records_failure_event():
    cluster = Cluster(seed=0)
    node = cluster.add_node("n1")

    def bad():
        node.abort("fatal condition")

    node.spawn(bad, name="bad")
    result = cluster.run()
    assert FailureKind.ABORT in result.failure_kinds()


def test_uncaught_exception_records_failure():
    cluster = Cluster(seed=0)
    node = cluster.add_node("n1")

    def bad():
        raise ValueError("boom")

    node.spawn(bad, name="bad")
    result = cluster.run()
    assert FailureKind.UNCAUGHT in result.failure_kinds()


def test_hang_detection_via_step_budget():
    cluster = Cluster(seed=0, max_steps=500)
    node = cluster.add_node("n1")
    flag = node.shared_var("flag", False)

    def spinner():
        while not flag.get():
            pass  # each .get() is a scheduling point

    node.spawn(spinner, name="spin")
    result = cluster.run()
    assert not result.completed
    assert FailureKind.HANG in result.failure_kinds()


def test_deadlock_detection_two_locks():
    cluster = Cluster(seed=3)
    node = cluster.add_node("n1")
    l1, l2 = node.lock("l1"), node.lock("l2")
    gate = node.shared_var("gate", 0)

    def t1():
        with l1:
            gate.set(1)
            while gate.get() < 2:
                if gate.get() == 2:
                    break
                # Wait until t2 holds l2 so the deadlock is certain.
                if gate.peek() == 2:
                    break
                sleep(1)
            with l2:
                pass

    def t2():
        with l2:
            while gate.get() < 1:
                sleep(1)
            gate.set(2)
            with l1:
                pass

    node.spawn(t1, name="t1")
    node.spawn(t2, name="t2")
    result = cluster.run()
    assert FailureKind.DEADLOCK in result.failure_kinds()


def test_thread_join():
    cluster = Cluster(seed=0)
    node = cluster.add_node("n1")
    log = []

    def child():
        log.append("child")

    def parent():
        t = node.spawn(child, name="child")
        node.join(t)
        log.append("parent-after-join")

    node.spawn(parent, name="parent")
    result = cluster.run()
    assert log == ["child", "parent-after-join"]
    assert result.completed


def test_cluster_cannot_run_twice():
    cluster = Cluster(seed=0)
    node = cluster.add_node("n1")
    node.spawn(lambda: None, name="noop")
    cluster.run()
    with pytest.raises(Exception):
        cluster.run()
