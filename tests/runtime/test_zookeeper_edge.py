"""Coordination-service substrate edge cases."""

from repro.runtime import Cluster, sleep


def _cluster():
    cluster = Cluster(seed=0)
    cluster.zookeeper()
    return cluster


def test_one_shot_watch_fires_once():
    cluster = _cluster()
    n = cluster.add_node("app")
    events = []

    def work():
        zk = n.zk()
        zk.create("/x", data=0)
        zk.watch("/x", lambda ev: events.append(ev.etype), persistent=False)
        zk.set_data("/x", 1)
        zk.set_data("/x", 2)
        while not events:
            sleep(2)
        sleep(30)  # give a (wrong) second notification time to arrive

    n.spawn(work, name="w")
    result = cluster.run()
    assert result.completed
    assert events == ["NodeDataChanged"]


def test_persistent_watch_fires_repeatedly():
    cluster = _cluster()
    n = cluster.add_node("app")
    events = []

    def work():
        zk = n.zk()
        zk.create("/x", data=0)
        zk.watch("/x", lambda ev: events.append(ev.zxid), persistent=True)
        zk.set_data("/x", 1)
        zk.set_data("/x", 2)
        while len(events) < 2:
            sleep(2)

    n.spawn(work, name="w")
    result = cluster.run()
    assert result.completed
    assert len(events) == 2
    assert events[0] < events[1]  # zxids are monotonic


def test_makepath_creates_ancestors():
    cluster = _cluster()
    n = cluster.add_node("app")
    out = {}

    def work():
        zk = n.zk()
        zk.create("/a/b/c", data="deep")
        out["parent"] = zk.exists("/a/b")
        out["grandparent"] = zk.exists("/a")
        out["children"] = zk.get_children("/a/b")

    n.spawn(work, name="w")
    cluster.run()
    assert out["parent"] and out["grandparent"]
    assert out["children"] == ["/a/b/c"]


def test_expiry_only_removes_owned_ephemerals():
    cluster = _cluster()
    a = cluster.add_node("a")
    b = cluster.add_node("b")
    out = {}

    def setup_a():
        zk = a.zk()
        zk.create("/locks/a", ephemeral=True)
        zk.create("/a-ready")

    def setup_b():
        zk = b.zk()
        while not zk.exists("/a-ready"):
            sleep(2)
        zk.create("/locks/b", ephemeral=True)
        zk.create("/durable")
        doomed = zk.expire_session("a")
        out["doomed"] = doomed
        out["b_alive"] = zk.exists("/locks/b")
        out["durable"] = zk.exists("/durable")
        out["a_gone"] = not zk.exists("/locks/a")

    a.spawn(setup_a, name="a")
    b.spawn(setup_b, name="b")
    result = cluster.run()
    assert result.completed
    assert out["doomed"] == ["/locks/a"]
    assert out["b_alive"] and out["durable"] and out["a_gone"]


def test_znode_accesses_are_memory_accesses():
    """Paper §7.2: znode delete/read pairs are race candidates."""
    from repro.detect import detect_races
    from repro.trace import FullScope, Tracer

    cluster = _cluster()
    tracer = Tracer(scope=FullScope()).bind(cluster)
    a = cluster.add_node("a")
    b = cluster.add_node("b")

    def setup_then_delete():
        zk = a.zk()
        zk.create("/contested")
        sleep(30)
        zk.delete("/contested")

    def other_delete():
        zk = b.zk()
        sleep(10)
        try:
            zk.delete("/contested")
        except Exception:
            pass

    a.spawn(setup_then_delete, name="a")
    b.spawn(other_delete, name="b")
    cluster.run()
    detection = detect_races(tracer.trace)
    znode_pairs = [
        c for c in detection.candidates if c.location[1] == "/contested"
    ]
    assert znode_pairs, "delete/delete on one znode must be a candidate"
