"""Schedule recording and exact replay."""

import pytest

from repro.errors import ReproError
from repro.runtime import Cluster, RandomStrategy
from repro.runtime.replay import RecordingStrategy, ReplayStrategy


def _build(cluster):
    node = cluster.add_node("n")
    var = node.shared_var("x", 0)
    order = []

    def worker(tag):
        def body():
            for _ in range(3):
                var.set(tag)
                order.append(tag)

        return body

    node.spawn(worker("a"), name="a")
    node.spawn(worker("b"), name="b")
    return order


def test_record_then_replay_reproduces_interleaving():
    recorder = RecordingStrategy(RandomStrategy(9))
    original = Cluster(seed=9, strategy=recorder)
    order_a = _build(original)
    original.run()
    assert recorder.schedule

    replayed = Cluster(seed=0, strategy=ReplayStrategy(recorder.schedule))
    order_b = _build(replayed)
    result = replayed.run()
    assert result.completed
    assert order_a == order_b


@pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)
def test_replay_divergence_is_detected():
    recorder = RecordingStrategy(RandomStrategy(3))
    original = Cluster(seed=3, strategy=recorder)
    _build(original)
    original.run()

    # Replay against a different workload: thread names don't match.
    replayed = Cluster(seed=0, strategy=ReplayStrategy(recorder.schedule))
    node = replayed.add_node("m")
    node.spawn(lambda: None, name="other")
    with pytest.raises(ReproError, match="diverged"):
        replayed.run()


def test_replay_exhaustion_needs_fallback():
    strategy = ReplayStrategy(["n.a"])  # far too short
    cluster = Cluster(seed=0, strategy=strategy)
    _build(cluster)
    with pytest.raises(ReproError, match="exhausted"):
        cluster.run()


def test_replay_exhaustion_with_fallback_continues():
    recorder = RecordingStrategy(RandomStrategy(5))
    original = Cluster(seed=5, strategy=recorder)
    _build(original)
    original.run()

    half = recorder.schedule[: len(recorder.schedule) // 2]
    strategy = ReplayStrategy(half, fallback=RandomStrategy(5))
    cluster = Cluster(seed=0, strategy=strategy)
    _build(cluster)
    result = cluster.run()
    assert result.completed
    assert not result.failures
