"""Coverage for smaller public API surfaces."""

import pytest

from repro.errors import ReproError
from repro.runtime import Cluster, FailureKind, OpKind, sleep


def _in_thread(body, seed=0):
    cluster = Cluster(seed=seed)
    node = cluster.add_node("n")
    out = {}

    def main():
        out["value"] = body(cluster, node)

    node.spawn(main, name="main")
    result = cluster.run()
    assert not result.harmful, [str(f) for f in result.failures]
    return out["value"], result


class TestSharedSet:
    def test_add_discard_contains(self):
        def body(cluster, node):
            s = node.shared_set("s")
            s.add("a")
            s.add("b")
            removed = s.discard("a")
            missing = s.discard("zz")
            return (removed, missing, s.contains("b"), s.size(), s.snapshot())

        (removed, missing, has_b, size, snap), _ = _in_thread(body)
        assert removed and not missing
        assert has_b and size == 1
        assert snap == ["b"]

    def test_is_empty(self):
        def body(cluster, node):
            s = node.shared_set("s")
            before = s.is_empty()
            s.add(1)
            return (before, s.is_empty())

        (before, after), _ = _in_thread(body)
        assert before and not after


class TestSharedVarCas:
    def test_cas_success_and_failure(self):
        def body(cluster, node):
            v = node.shared_var("v", "old")
            won = v.compare_and_set("old", "new")
            lost = v.compare_and_set("old", "newer")
            return (won, lost, v.get())

        (won, lost, value), _ = _in_thread(body)
        assert won and not lost
        assert value == "new"

    def test_cas_mutual_exclusion(self):
        cluster = Cluster(seed=5)
        node = cluster.add_node("n")
        leader = node.shared_var("leader", None)
        winners = []

        def contender(tag):
            def body():
                if leader.compare_and_set(None, tag):
                    winners.append(tag)

            return body

        for tag in ("a", "b", "c"):
            node.spawn(contender(tag), name=tag)
        cluster.run()
        assert len(winners) == 1  # CAS is atomic: exactly one winner


class TestEventQueueExtras:
    def test_default_handler(self):
        cluster = Cluster(seed=0)
        node = cluster.add_node("n")
        q = node.event_queue("q")
        got = []
        q.set_default_handler(lambda ev: got.append(ev.etype))
        node.spawn(lambda: q.post("anything"), name="p")
        cluster.run()
        assert got == ["anything"]

    def test_unhandled_event_warns_but_survives(self):
        cluster = Cluster(seed=0)
        node = cluster.add_node("n")
        q = node.event_queue("q")
        node.spawn(lambda: q.post("mystery"), name="p")
        result = cluster.run()
        assert result.completed and not result.harmful
        assert any("no handler" in line for line in node.log.lines)

    def test_pending_counts(self):
        cluster = Cluster(seed=0)
        node = cluster.add_node("n")
        q = node.event_queue("q")
        q.register("e", lambda ev: None)
        observed = {}

        def poster():
            for _ in range(3):
                q.post("e")
            observed["pending"] = q.pending()

        node.spawn(poster, name="p")
        cluster.run()
        assert 0 <= observed["pending"] <= 3
        assert q.pending() == 0  # drained by run end

    def test_zero_consumers_rejected(self):
        cluster = Cluster(seed=0)
        node = cluster.add_node("n")
        with pytest.raises(ReproError):
            node.event_queue("bad", consumers=0)


class TestRpcExport:
    def test_export_registers_public_methods(self):
        class Service:
            def ping(self):
                return "pong"

            def add(self, a, b):
                return a + b

            def _private(self):
                return "hidden"

        cluster = Cluster(seed=0)
        server = cluster.add_node("server")
        client = cluster.add_node("client")
        server.rpc_server.export(Service())
        out = {}

        def caller():
            out["ping"] = client.rpc("server").ping()
            out["sum"] = client.rpc("server").add(2, 2)

        client.spawn(caller, name="c")
        cluster.run()
        assert out == {"ping": "pong", "sum": 4}

    def test_duplicate_registration_rejected(self):
        cluster = Cluster(seed=0)
        server = cluster.add_node("server")
        server.rpc_server.register("m", lambda: 1)
        with pytest.raises(ReproError):
            server.rpc_server.register("m", lambda: 2)


class TestRunResult:
    def test_summary_ok(self):
        cluster = Cluster(seed=0)
        node = cluster.add_node("n")
        node.spawn(lambda: None, name="w")
        result = cluster.run()
        text = result.summary()
        assert "OK" in text and "steps=" in text

    def test_summary_failed(self):
        cluster = Cluster(seed=0)
        node = cluster.add_node("n")
        node.spawn(lambda: node.abort("nope"), name="w")
        result = cluster.run()
        assert "FAILED" in result.summary()
        assert "abort" in result.summary()

    def test_failure_log_queries(self):
        cluster = Cluster(seed=0)
        node = cluster.add_node("n")

        def noisy():
            node.log.error("bad thing")
            node.log.warn("just a warning")

        node.spawn(noisy, name="w")
        result = cluster.run()
        assert len(result.failures) == 1
        assert result.failures.by_kind(FailureKind.ERROR_LOG)
        assert not result.failures.by_kind(FailureKind.ABORT)
        assert FailureKind.ERROR_LOG in result.failure_kinds()
