"""Communication primitives: RPC, sockets, event queues, ZK substrate."""

import pytest

from repro.errors import NoNodeError, NodeExistsError, RpcError
from repro.runtime import Cluster, sleep


def test_rpc_roundtrip():
    cluster = Cluster(seed=0)
    server = cluster.add_node("server")
    client = cluster.add_node("client")
    server.rpc_server.register("add", lambda a, b: a + b)
    result = {}

    def caller():
        result["sum"] = client.rpc("server").add(2, 3)

    client.spawn(caller, name="caller")
    run = cluster.run()
    assert run.completed
    assert result["sum"] == 5


def test_rpc_remote_exception_propagates():
    cluster = Cluster(seed=0)
    server = cluster.add_node("server")
    client = cluster.add_node("client")

    def failing():
        raise NoNodeError("/missing")

    server.rpc_server.register("fail", failing)
    caught = {}

    def caller():
        try:
            client.rpc("server").fail()
        except NoNodeError as exc:
            caught["exc"] = exc

    client.spawn(caller, name="caller")
    cluster.run()
    assert "exc" in caught


def test_rpc_unknown_method_raises():
    cluster = Cluster(seed=0)
    cluster.add_node("server")
    client = cluster.add_node("client")
    caught = {}

    def caller():
        try:
            client.rpc("server").nope()
        except RpcError as exc:
            caught["exc"] = exc

    client.spawn(caller, name="caller")
    cluster.run()
    assert "exc" in caught


def test_rpc_to_crashed_node_fails():
    cluster = Cluster(seed=0)
    server = cluster.add_node("server")
    client = cluster.add_node("client")
    server.rpc_server.register("ping", lambda: "pong")
    server.crash()
    caught = {}

    def caller():
        try:
            client.rpc("server").ping()
        except RpcError as exc:
            caught["exc"] = exc

    client.spawn(caller, name="caller")
    cluster.run()
    assert "exc" in caught


def test_concurrent_rpc_with_multiple_handler_threads():
    cluster = Cluster(seed=5)
    server = cluster.add_node("server", rpc_threads=2)
    client = cluster.add_node("client")
    busy = server.shared_var("busy", 0)
    results = []

    def slow():
        busy.set(1)
        sleep(10)
        busy.set(0)
        return "slow"

    server.rpc_server.register("slow", slow)
    server.rpc_server.register("fast", lambda: "fast")

    def c1():
        results.append(client.rpc("server").slow())

    def c2():
        results.append(client.rpc("server").fast())

    client.spawn(c1, name="c1")
    client.spawn(c2, name="c2")
    run = cluster.run()
    assert run.completed
    assert sorted(results) == ["fast", "slow"]


def test_socket_message_delivery():
    cluster = Cluster(seed=0)
    a = cluster.add_node("a")
    b = cluster.add_node("b")
    got = []
    b.on_message("greet", lambda payload, src: got.append((payload, src)))

    def sender():
        a.send("b", "greet", "hello")

    a.spawn(sender, name="sender")
    run = cluster.run()
    assert got == [("hello", "a")]


def test_socket_fifo_per_receiver():
    cluster = Cluster(seed=3)
    a = cluster.add_node("a")
    b = cluster.add_node("b")
    got = []
    b.on_message("num", lambda payload, src: got.append(payload))

    def sender():
        for i in range(5):
            a.send("b", "num", i)

    a.spawn(sender, name="sender")
    cluster.run()
    assert got == [0, 1, 2, 3, 4]


def test_event_queue_dispatch_and_fifo():
    cluster = Cluster(seed=0)
    node = cluster.add_node("n")
    q = node.event_queue("main")
    got = []
    q.register("tick", lambda e: got.append(e.payload))

    def poster():
        for i in range(4):
            q.post("tick", i)

    node.spawn(poster, name="poster")
    cluster.run()
    assert got == [0, 1, 2, 3]


def test_event_queue_multi_consumer_all_handled():
    cluster = Cluster(seed=9)
    node = cluster.add_node("n")
    q = node.event_queue("pool", consumers=3)
    got = []
    q.register("job", lambda e: got.append(e.payload))

    def poster():
        for i in range(9):
            q.post("job", i)

    node.spawn(poster, name="poster")
    cluster.run()
    assert sorted(got) == list(range(9))


def test_event_handler_exception_records_failure():
    cluster = Cluster(seed=0)
    node = cluster.add_node("n")
    q = node.event_queue("main")

    def bad_handler(event):
        raise RuntimeError("handler blew up")

    q.register("boom", bad_handler)
    node.spawn(lambda: q.post("boom"), name="poster")
    result = cluster.run()
    assert result.harmful


def test_lock_mutual_exclusion():
    cluster = Cluster(seed=11)
    node = cluster.add_node("n")
    lock = node.lock("guard")
    counter = node.shared_counter("c")

    def bump():
        for _ in range(5):
            with lock:
                counter.increment()

    node.spawn(bump, name="a")
    node.spawn(bump, name="b")
    cluster.run()
    assert counter.peek() == 10  # lock makes increments atomic


def test_lock_reentrant():
    cluster = Cluster(seed=0)
    node = cluster.add_node("n")
    lock = node.lock("guard")
    ok = {}

    def worker():
        with lock:
            with lock:
                ok["nested"] = True

    node.spawn(worker, name="w")
    run = cluster.run()
    assert ok.get("nested")
    assert run.completed


class TestZooKeeperSubstrate:
    def _cluster(self):
        cluster = Cluster(seed=0)
        cluster.zookeeper()
        return cluster

    def test_create_get(self):
        cluster = self._cluster()
        n = cluster.add_node("app")
        out = {}

        def work():
            zk = n.zk()
            zk.create("/x", data="v1")
            out["data"] = zk.get_data("/x")

        n.spawn(work, name="w")
        cluster.run()
        assert out["data"] == "v1"

    def test_create_duplicate_raises(self):
        cluster = self._cluster()
        n = cluster.add_node("app")
        out = {}

        def work():
            zk = n.zk()
            zk.create("/x")
            try:
                zk.create("/x")
            except NodeExistsError:
                out["dup"] = True

        n.spawn(work, name="w")
        cluster.run()
        assert out.get("dup")

    def test_delete_missing_raises(self):
        cluster = self._cluster()
        n = cluster.add_node("app")
        out = {}

        def work():
            try:
                n.zk().delete("/nope")
            except NoNodeError:
                out["missing"] = True

        n.spawn(work, name="w")
        cluster.run()
        assert out.get("missing")

    def test_watch_fires_on_set_data(self):
        cluster = self._cluster()
        writer = cluster.add_node("writer")
        watcher = cluster.add_node("watcher")
        seen = []

        def watch_side():
            zk = watcher.zk()
            zk.create("/status", data="init")
            zk.watch("/status", lambda ev: seen.append((ev.etype, ev.data)))
            # Signal the writer that the watch is in place.
            zk.create("/ready")

        def write_side():
            zk = writer.zk()
            while not zk.exists("/ready"):
                sleep(2)
            zk.set_data("/status", "opened")

        watcher.spawn(watch_side, name="w")
        writer.spawn(write_side, name="u")
        cluster.run()
        assert ("NodeDataChanged", "opened") in seen

    def test_ephemeral_expiry_fires_delete_watch(self):
        cluster = self._cluster()
        owner = cluster.add_node("owner")
        other = cluster.add_node("other")
        seen = []

        def owner_side():
            zk = owner.zk()
            zk.create("/lease", ephemeral=True)
            zk.create("/lease-ready")

        def other_side():
            zk = other.zk()
            while not zk.exists("/lease-ready"):
                sleep(2)
            zk.watch("/lease", lambda ev: seen.append(ev.etype))
            zk.expire_session("owner")
            while not seen:
                sleep(2)

        owner.spawn(owner_side, name="o")
        other.spawn(other_side, name="x")
        result = cluster.run()
        assert result.completed
        assert "NodeDeleted" in seen

    def test_children_and_child_watch(self):
        cluster = self._cluster()
        n = cluster.add_node("app")
        out = {}
        seen = []

        def work():
            zk = n.zk()
            zk.create("/dir")
            zk.watch_children("/dir", lambda ev: seen.append(ev.etype))
            zk.create("/dir/a")
            zk.create("/dir/b")
            out["children"] = zk.get_children("/dir")
            while len(seen) < 2:
                sleep(2)

        n.spawn(work, name="w")
        result = cluster.run()
        assert result.completed
        assert out["children"] == ["/dir/a", "/dir/b"]
        assert seen.count("NodeChildrenChanged") >= 2
