"""Property-based tests: shared heap objects behave like their models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import Cluster

KEYS = st.sampled_from(["a", "b", "c", "d"])
VALUES = st.integers(min_value=-5, max_value=5)

DICT_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), KEYS, VALUES),
        st.tuples(st.just("remove"), KEYS, st.none()),
        st.tuples(st.just("get"), KEYS, st.none()),
        st.tuples(st.just("clear"), st.none(), st.none()),
    ),
    max_size=30,
)


def _run_in_thread(body):
    cluster = Cluster(seed=0)
    node = cluster.add_node("n")
    out = {}

    def main():
        out["result"] = body(node)

    node.spawn(main, name="main")
    run = cluster.run()
    assert not run.harmful, [str(f) for f in run.failures]
    return out["result"]


@settings(max_examples=40, deadline=None)
@given(ops=DICT_OPS)
def test_shared_dict_matches_model(ops):
    def body(node):
        shared = node.shared_dict("d")
        model = {}
        observations = []
        for op, key, value in ops:
            if op == "put":
                shared.put(key, value)
                model[key] = value
            elif op == "remove":
                observations.append((shared.remove(key), model.pop(key, None)))
            elif op == "get":
                observations.append((shared.get(key), model.get(key)))
            elif op == "clear":
                shared.clear()
                model.clear()
            observations.append((shared.size(), len(model)))
            observations.append((shared.is_empty(), not model))
            observations.append((sorted(shared.keys(), key=repr), sorted(model, key=repr)))
        return observations

    for actual, expected in _run_in_thread(body):
        assert actual == expected


LIST_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("append"), VALUES),
        st.tuples(st.just("remove"), VALUES),
        st.tuples(st.just("pop_first"), st.none()),
    ),
    max_size=25,
)


@settings(max_examples=40, deadline=None)
@given(ops=LIST_OPS)
def test_shared_list_matches_model(ops):
    def body(node):
        shared = node.shared_list("l")
        model = []
        observations = []
        for op, value in ops:
            if op == "append":
                shared.append(value)
                model.append(value)
            elif op == "remove":
                removed = shared.remove(value)
                expected = value in model
                if expected:
                    model.remove(value)
                observations.append((removed, expected))
            elif op == "pop_first":
                observations.append(
                    (shared.pop_first(), model.pop(0) if model else None)
                )
            observations.append((shared.snapshot(), list(model)))
        return observations

    for actual, expected in _run_in_thread(body):
        assert actual == expected


@settings(max_examples=30, deadline=None)
@given(
    increments=st.lists(st.integers(min_value=-3, max_value=7), max_size=20)
)
def test_shared_counter_matches_sum(increments):
    def body(node):
        counter = node.shared_counter("c", initial=0)
        for delta in increments:
            counter.increment(delta)
        return counter.get()

    assert _run_in_thread(body) == sum(increments)


@settings(max_examples=25, deadline=None)
@given(
    values=st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=15)
)
def test_shared_var_last_write_wins(values):
    def body(node):
        var = node.shared_var("v")
        for value in values:
            var.set(value)
        return var.get()

    assert _run_in_thread(body) == values[-1]
