"""Network fault injection: delays, drops, partitions."""

from repro.runtime import Cluster, FlakyNetwork, ReliableNetwork, sleep


def _two_nodes(seed=0, network=None):
    cluster = Cluster(seed=seed)
    if network is not None:
        cluster.set_network(network)
    a = cluster.add_node("a")
    b = cluster.add_node("b")
    return cluster, a, b


def test_reliable_network_delivers_in_order():
    cluster, a, b = _two_nodes()
    got = []
    b.on_message("n", lambda p, s: got.append(p))
    a.spawn(lambda: [a.send("b", "n", i) for i in range(5)], name="s")
    cluster.run()
    assert got == [0, 1, 2, 3, 4]


def test_delayed_messages_can_reorder():
    reordered = False
    for seed in range(10):
        cluster, a, b = _two_nodes(
            seed=seed, network=FlakyNetwork(seed=seed, max_delay=20)
        )
        got = []
        b.on_message("n", lambda p, s: got.append(p))

        def sender():
            for i in range(6):
                a.send("b", "n", i)

        a.spawn(sender, name="s")
        result = cluster.run()
        assert result.completed
        assert sorted(got) == list(range(6))  # delayed, never lost
        if got != sorted(got):
            reordered = True
    assert reordered, "delays never reordered deliveries across 10 seeds"


def test_dropped_messages_are_counted_and_marked():
    cluster, a, b = _two_nodes(
        network=FlakyNetwork(seed=1, drop_probability=1.0)
    )
    got = []
    b.on_message("n", lambda p, s: got.append(p))
    a.spawn(lambda: a.send("b", "n", 1), name="s")
    result = cluster.run()
    assert result.completed
    assert got == []
    assert b.sockets.dropped == 1


def test_partition_blocks_both_directions():
    network = FlakyNetwork(seed=0)
    network.partition(["a"], ["b"])
    cluster, a, b = _two_nodes(network=network)
    got = []
    a.on_message("n", lambda p, s: got.append(("a", p)))
    b.on_message("n", lambda p, s: got.append(("b", p)))
    a.spawn(lambda: a.send("b", "n", 1), name="sa")
    b.spawn(lambda: b.send("a", "n", 2), name="sb")
    cluster.run()
    assert got == []


def test_heal_restores_connectivity():
    network = FlakyNetwork(seed=0)
    network.partition(["a"], ["b"])
    network.heal()
    cluster, a, b = _two_nodes(network=network)
    got = []
    b.on_message("n", lambda p, s: got.append(p))
    a.spawn(lambda: a.send("b", "n", 7), name="s")
    cluster.run()
    assert got == [7]


def test_delayed_delivery_does_not_deadlock_idle_system():
    """A pending delayed message must advance the clock, not deadlock."""
    cluster, a, b = _two_nodes(network=FlakyNetwork(seed=0, max_delay=50))
    got = []
    b.on_message("n", lambda p, s: got.append(p))

    def sender():
        a.send("b", "n", 1)
        # Sender finishes immediately; only the delayed delivery remains.

    a.spawn(sender, name="s")
    result = cluster.run()
    assert result.completed
    assert got == [1]


def test_dcbug_detection_with_flaky_network():
    """Detection still works when gossip is delayed (failure injection)."""
    from repro.detect import detect_races
    from repro.systems import workload_by_id
    from repro.trace import FullScope, Tracer

    workload = workload_by_id("CA-1011")
    cluster = workload.cluster(0, churn=False)
    cluster.set_network(FlakyNetwork(seed=3, max_delay=5))
    tracer = Tracer(scope=FullScope()).bind(cluster)
    result = cluster.run()
    assert result.completed
    detection = detect_races(tracer.trace)
    assert any("tokens" in c.variable for c in detection.candidates)


def test_one_way_partition_blocks_only_forward_direction():
    network = FlakyNetwork(seed=0)
    network.partition_one_way(["a"], ["b"])
    cluster, a, b = _two_nodes(network=network)
    got = []
    a.on_message("n", lambda p, s: got.append(("a", p)))
    b.on_message("n", lambda p, s: got.append(("b", p)))
    a.spawn(lambda: a.send("b", "n", 1), name="sa")
    b.spawn(lambda: b.send("a", "n", 2), name="sb")
    cluster.run()
    # a -> b is black-holed; b -> a still flows (half-open partition).
    assert got == [("a", 2)]
    assert network.is_partitioned("a", "b")
    assert not network.is_partitioned("b", "a")


def test_selective_heal_leaves_other_partitions_cut():
    network = FlakyNetwork(seed=0)
    network.partition(["a"], ["b"])
    network.partition(["a"], ["c"])
    network.heal(["a"], ["b"])
    cluster = Cluster(seed=0)
    cluster.set_network(network)
    a = cluster.add_node("a")
    b = cluster.add_node("b")
    c = cluster.add_node("c")
    got = []
    b.on_message("n", lambda p, s: got.append(("b", p)))
    c.on_message("n", lambda p, s: got.append(("c", p)))

    def sender():
        a.send("b", "n", 1)
        a.send("c", "n", 2)

    a.spawn(sender, name="s")
    cluster.run()
    assert got == [("b", 1)]  # a|b healed, a|c still cut
    assert network.is_partitioned("a", "c")


def test_selective_heal_requires_both_groups():
    network = FlakyNetwork(seed=0)
    try:
        network.heal(["a"], None)
    except ValueError:
        pass
    else:
        raise AssertionError("expected ValueError for one-group heal")


def test_duplicated_messages_deliver_extra_copy():
    cluster, a, b = _two_nodes(
        network=FlakyNetwork(seed=1, duplicate_probability=1.0)
    )
    got = []
    b.on_message("n", lambda p, s: got.append(p))
    a.spawn(lambda: a.send("b", "n", 5), name="s")
    result = cluster.run()
    assert result.completed
    assert got == [5, 5]


def test_duplication_is_seed_deterministic():
    def deliveries(seed):
        cluster, a, b = _two_nodes(
            seed=seed, network=FlakyNetwork(seed=seed, duplicate_probability=0.5)
        )
        got = []
        b.on_message("n", lambda p, s: got.append(p))
        a.spawn(lambda: [a.send("b", "n", i) for i in range(8)], name="s")
        assert cluster.run().completed
        return got

    assert deliveries(4) == deliveries(4)


def test_flaky_network_validates_parameters():
    import pytest

    with pytest.raises(ValueError):
        FlakyNetwork(max_delay=-1)
    with pytest.raises(ValueError):
        FlakyNetwork(drop_probability=1.5)
    with pytest.raises(ValueError):
        FlakyNetwork(duplicate_probability=-0.1)
