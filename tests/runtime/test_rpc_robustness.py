"""RPC timeouts, bounded retries, deterministic backoff, HB soundness."""

import pytest

from repro.errors import RpcError, RpcTimeout, SimAbort
from repro.runtime import Cluster, OpKind, sleep
from repro.runtime.rpc import call_with_retry
from repro.trace import FullScope, Tracer
from repro.trace.records import dump_records


def _traced_cluster(seed=0):
    cluster = Cluster(seed=seed)
    tracer = Tracer(scope=FullScope())
    tracer.bind(cluster)
    return cluster, tracer


def test_rpc_timeout_raises_and_emits_no_join():
    cluster, tracer = _traced_cluster()
    a = cluster.add_node("a")
    b = cluster.add_node("b")

    def slow():
        sleep(100)
        return "late"

    b.rpc_server.register("slow", slow)
    outcomes = []

    def caller():
        try:
            a.rpc("b", timeout=10).slow()
        except RpcTimeout:
            outcomes.append("timeout")

    a.spawn(caller, name="caller")
    result = cluster.run()
    assert result.completed
    assert outcomes == ["timeout"]

    creates = tracer.trace.of_kind(OpKind.RPC_CREATE)
    joins = tracer.trace.of_kind(OpKind.RPC_JOIN)
    slow_tags = {r.obj_id for r in creates if r.extra.get("method") == "slow"}
    assert slow_tags
    # The caller gave up: the abandoned call has no Join record, so
    # Rule-Mrpc never orders the server's End before caller code.
    assert not [j for j in joins if j.obj_id in slow_tags]


def test_timed_out_request_is_skipped_by_server():
    cluster = Cluster(seed=0)
    a = cluster.add_node("a")
    b = cluster.add_node("b")
    handled = []
    started = []

    def busy():
        started.append(1)
        sleep(60)
        return "done"

    b.rpc_server.register("busy", busy)
    b.rpc_server.register("probe", lambda: handled.append("probe") or "ok")

    def caller():
        a.rpc("b").busy()  # occupies the single handler thread

    def impatient():
        while not started:  # wait until `busy` holds the handler
            sleep(1)
        try:
            # Queued behind `busy`; abandoned before the server gets to it.
            a.rpc("b", timeout=5).probe()
        except RpcTimeout:
            pass
        sleep(80)

    a.spawn(caller, name="caller")
    a.spawn(impatient, name="impatient")
    result = cluster.run()
    assert result.completed
    assert handled == []  # the abandoned request never ran


def test_retry_succeeds_after_restart():
    """A retry loop rides out a crash/restart window."""
    cluster = Cluster(seed=0)
    a = cluster.add_node("a")
    b = cluster.add_node("b")
    b.rpc_server.register("ping", lambda: "pong")
    outcomes = []

    def chaos():
        sleep(2)
        b.crash()
        sleep(30)
        b.restart()

    def caller():
        sleep(5)  # call lands in the crash window
        outcomes.append(
            call_with_retry(a, "b", "ping", attempts=6, backoff_base=8)
        )

    a.spawn(caller, name="caller")
    a.spawn(chaos, name="chaos")
    result = cluster.run()
    assert result.completed
    assert outcomes == ["pong"]


def test_retry_exhaustion_raises_last_error():
    cluster = Cluster(seed=0)
    a = cluster.add_node("a")
    b = cluster.add_node("b")
    b.rpc_server.register("ping", lambda: "pong")
    outcomes = []

    def chaos():
        b.crash()

    def caller():
        sleep(3)
        try:
            call_with_retry(a, "b", "ping", attempts=3)
        except RpcError as exc:
            outcomes.append(str(exc))

    a.spawn(chaos, name="chaos")
    a.spawn(caller, name="caller")
    result = cluster.run()
    assert result.completed
    assert outcomes and "crashed" in outcomes[0]


def test_retry_never_retries_application_failures():
    """A handler's SimFailure is a remote exception, not a transport
    blip: it must propagate on the first attempt."""
    cluster = Cluster(seed=0)
    a = cluster.add_node("a")
    b = cluster.add_node("b")
    attempts = []

    def fragile():
        attempts.append(1)
        raise SimAbort("application said no")

    b.rpc_server.register("fragile", fragile)
    outcomes = []

    def caller():
        try:
            call_with_retry(a, "b", "fragile", attempts=4)
        except SimAbort:
            outcomes.append("aborted")

    a.spawn(caller, name="caller")
    cluster.run()
    assert outcomes == ["aborted"]
    assert len(attempts) == 1


def test_retried_attempts_use_fresh_tags():
    cluster, tracer = _traced_cluster()
    a = cluster.add_node("a")
    b = cluster.add_node("b")
    calls = []

    def ping():
        if not calls:
            calls.append(1)
            sleep(50)  # the first call outlives the caller's patience
        return "pong"

    b.rpc_server.register("ping", ping)
    results = []

    def caller():
        results.append(
            call_with_retry(
                a, "b", "ping", attempts=3, timeout=10, backoff_base=64
            )
        )

    a.spawn(caller, name="caller")
    result = cluster.run()
    assert result.completed
    assert results == ["pong"]

    creates = [
        r
        for r in tracer.trace.of_kind(OpKind.RPC_CREATE)
        if r.extra.get("method") == "ping"
    ]
    # At least the timed-out attempt and the success; jittered backoff
    # may land one more retry inside the handler's busy window.
    assert 2 <= len(creates) <= 3
    assert len({r.obj_id for r in creates}) == len(creates)  # all fresh tags
    # Failed attempts are annotated; the first attempt carries no marker.
    attempts = [r.extra.get("attempt", 0) for r in creates]
    assert attempts == sorted(attempts)
    # Only the successful attempt has a Join.
    joins = [
        r
        for r in tracer.trace.of_kind(OpKind.RPC_JOIN)
        if r.obj_id in {c.obj_id for c in creates}
    ]
    assert len(joins) == 1


def test_backoff_schedule_is_deterministic():
    def run_once():
        cluster, tracer = _traced_cluster(seed=3)
        a = cluster.add_node("a")
        b = cluster.add_node("b")
        b.rpc_server.register("ping", lambda: "pong")

        def chaos():
            sleep(2)
            b.crash()
            sleep(40)
            b.restart()

        def caller():
            sleep(4)
            call_with_retry(a, "b", "ping", attempts=8, backoff_base=2)

        a.spawn(chaos, name="chaos")
        a.spawn(caller, name="caller")
        assert cluster.run().completed
        return dump_records(tracer.trace.records)

    assert run_once() == run_once()


def test_call_with_retry_validates_attempts():
    cluster = Cluster(seed=0)
    a = cluster.add_node("a")
    failures = []

    def caller():
        from repro.errors import ReproError

        try:
            call_with_retry(a, "a", "x", attempts=0)
        except ReproError:
            failures.append("rejected")

    a.spawn(caller, name="caller")
    cluster.run()
    assert failures == ["rejected"]


def test_timeout_fires_when_cluster_is_otherwise_idle():
    """The TimeoutRegistry wake hint: a blocked caller with a deadline
    must not be declared a deadlock — the clock jumps to the deadline."""
    cluster = Cluster(seed=0)
    a = cluster.add_node("a")
    b = cluster.add_node("b")

    def wedge():
        sleep(10_000)  # the handler outlives everyone
        return None

    b.rpc_server.register("wedge", wedge)
    outcomes = []

    def caller():
        try:
            a.rpc("b", timeout=50).wedge()
        except RpcTimeout:
            outcomes.append("timeout")

    a.spawn(caller, name="caller")
    result = cluster.run()
    assert result.completed
    assert outcomes == ["timeout"]


def test_backoff_full_jitter_disperses_across_callers():
    """Clients that failed together must not retry in lockstep.

    Full jitter draws each client's delay uniformly from the backoff
    window, keyed by caller identity — so a fleet of callers spreads
    across the window instead of hammering the recovering server in
    synchronized waves."""
    from repro.runtime.rpc import backoff_delay

    window = 64
    keys = [f"client-{i}->srv.ping" for i in range(200)]
    delays = [backoff_delay(5, cap=window, key=k) for k in keys]
    # Every delay stays inside the window...
    assert all(1 <= d <= window for d in delays)
    # ...but the fleet is dispersed: many distinct values, covering
    # both the low and the high end of the window.
    assert len(set(delays)) > window // 4
    assert min(delays) <= window // 4
    assert max(delays) >= (3 * window) // 4
    # And the draw is a hash, not an RNG: byte-reproducible.
    assert delays == [backoff_delay(5, cap=window, key=k) for k in keys]


def test_backoff_window_grows_exponentially_to_cap():
    from repro.runtime.rpc import backoff_delay

    key = "client->srv.m"
    for attempt, ceiling in [(0, 2), (1, 4), (2, 8), (6, 64), (20, 64)]:
        delay = backoff_delay(attempt, base=2, factor=2, cap=64, key=key)
        assert 1 <= delay <= ceiling
