"""Fault plans, the injector, restart re-bootstrap, and HB soundness."""

import pytest

from repro.errors import ReproError, RpcError
from repro.hb.graph import HBGraph
from repro.runtime import (
    Cluster,
    FaultAction,
    FaultKind,
    FaultPlan,
    FlakyNetwork,
    NodeBehavior,
    OpKind,
    sleep,
    verify_fault_soundness,
)
from repro.trace import FullScope, Tracer


def _traced_cluster(seed=0, network=None):
    cluster = Cluster(seed=seed)
    if network is not None:
        cluster.set_network(network)
    tracer = Tracer(scope=FullScope())
    tracer.bind(cluster)
    return cluster, tracer


# -- plans --------------------------------------------------------------------


def test_seeded_plans_are_deterministic():
    nodes = ["n1", "n2", "n3"]
    first = FaultPlan.seeded(11, nodes, crashes=2, partitions=2)
    second = FaultPlan.seeded(11, nodes, crashes=2, partitions=2)
    assert first.actions == second.actions
    assert first.describe() == second.describe()
    different = FaultPlan.seeded(12, nodes, crashes=2, partitions=2)
    assert first.actions != different.actions


def test_seeded_plan_protects_nodes():
    for seed in range(10):
        plan = FaultPlan.seeded(seed, ["a", "b", "client"], protected=["client"])
        for action in plan.actions:
            if action.kind in (FaultKind.CRASH, FaultKind.RESTART):
                assert action.target != "client"


def test_plan_validates_actions():
    with pytest.raises(ReproError):
        FaultPlan([FaultAction(5, FaultKind.CRASH)])  # no target
    with pytest.raises(ReproError):
        FaultPlan([FaultAction(5, FaultKind.PARTITION, group_a=("a",))])


def test_plan_actions_sorted_by_time():
    plan = FaultPlan(
        [
            FaultAction(30, FaultKind.RESTART, target="a"),
            FaultAction(10, FaultKind.CRASH, target="a"),
        ]
    )
    assert [a.at for a in plan.actions] == [10, 30]


# -- injector: crash / restart ------------------------------------------------


def test_injector_crashes_and_restarts_on_schedule():
    cluster = Cluster(seed=0)
    a = cluster.add_node("a")
    b = cluster.add_node("b")
    b.rpc_server.register("ping", lambda: "pong")
    outcomes = []

    def prober():
        for _ in range(8):
            try:
                outcomes.append(b.crashed)
                a.rpc("b").ping()
            except RpcError:
                pass
            sleep(10)

    a.spawn(prober, name="prober")
    plan = FaultPlan(
        [
            FaultAction(20, FaultKind.CRASH, target="b"),
            FaultAction(45, FaultKind.RESTART, target="b"),
        ]
    )
    injector = plan.install(cluster)
    result = cluster.run()
    assert result.completed
    assert b.restarts == 1
    assert not b.crashed
    assert injector.applied == ["@20 crash b", "@45 restart b"]
    assert True in outcomes and False in outcomes  # saw both states


def test_restart_invokes_node_behaviors_and_hooks():
    cluster = Cluster(seed=0)
    a = cluster.add_node("a")
    b = cluster.add_node("b")
    calls = []

    class Membership(NodeBehavior):
        def on_restart(self, node):
            calls.append(("behavior", node.name))

    b.attach(Membership())
    b.on_restart(lambda: calls.append(("hook", "b")))

    def chaos():
        sleep(5)
        b.crash()
        sleep(5)
        b.restart()
        b.restart()  # restart of a live node is a no-op

    a.spawn(chaos, name="chaos")
    result = cluster.run()
    assert result.completed
    assert calls == [("behavior", "b"), ("hook", "b")]
    assert b.restarts == 1


def test_injector_installs_flaky_network_for_partitions():
    cluster = Cluster(seed=0)
    cluster.add_node("a")
    cluster.add_node("b")
    plan = FaultPlan(
        [
            FaultAction(5, FaultKind.PARTITION, group_a=("a",), group_b=("b",)),
            FaultAction(15, FaultKind.HEAL, group_a=("a",), group_b=("b",)),
        ]
    )
    plan.install(cluster)
    assert isinstance(cluster.network, FlakyNetwork)
    result = cluster.run()
    assert result.completed
    assert not cluster.network.is_partitioned("a", "b")


# -- soundness: faults add no spurious HB edges -------------------------------


def test_dropped_sends_leave_no_recv_and_no_msoc_edge():
    cluster, tracer = _traced_cluster(
        network=FlakyNetwork(seed=1, drop_probability=1.0)
    )
    a = cluster.add_node("a")
    b = cluster.add_node("b")
    b.on_message("n", lambda p, s: None)
    a.spawn(lambda: [a.send("b", "n", i) for i in range(3)], name="s")
    result = cluster.run()
    assert result.completed

    report = verify_fault_soundness(tracer.trace)
    assert report.ok, report.violations
    assert report.dropped_sends == 3
    assert not tracer.trace.of_kind(OpKind.SOCK_RECV)

    graph = HBGraph(tracer.trace)
    assert graph.edge_counts.get("Msoc", 0) == 0


def test_duplicated_sends_bound_msoc_edges_by_copies():
    cluster, tracer = _traced_cluster(
        network=FlakyNetwork(seed=1, duplicate_probability=1.0)
    )
    a = cluster.add_node("a")
    b = cluster.add_node("b")
    got = []
    b.on_message("n", lambda p, s: got.append(p))
    a.spawn(lambda: a.send("b", "n", 9), name="s")
    result = cluster.run()
    assert result.completed
    assert got == [9, 9]  # both copies delivered, same payload

    sends = tracer.trace.of_kind(OpKind.SOCK_SEND)
    recvs = tracer.trace.of_kind(OpKind.SOCK_RECV)
    assert len(sends) == 1 and sends[0].extra.get("copies") == 2
    assert len(recvs) == 2
    assert {r.obj_id for r in recvs} == {sends[0].obj_id}

    report = verify_fault_soundness(tracer.trace)
    assert report.ok, report.violations
    assert report.duplicated_sends == 1

    # Each real delivery gets its (sound) edge; nothing beyond that.
    graph = HBGraph(tracer.trace)
    assert graph.edge_counts.get("Msoc", 0) == 2


def test_crash_faulted_trace_builds_hb_graph_without_spurious_edges():
    """The tentpole invariant end-to-end: crash + restart + duplication in
    one run; the trace must verify sound and the HB graph must build
    (a spurious backward edge would raise inside ``HBGraph``)."""
    cluster, tracer = _traced_cluster(
        network=FlakyNetwork(seed=2, duplicate_probability=0.5)
    )
    a = cluster.add_node("a")
    b = cluster.add_node("b")
    b.on_message("n", lambda p, s: None)

    def sender():
        for i in range(4):
            a.send("b", "n", i)
            sleep(8)

    a.spawn(sender, name="s")
    plan = FaultPlan(
        [
            FaultAction(10, FaultKind.CRASH, target="b"),
            FaultAction(22, FaultKind.RESTART, target="b"),
        ]
    )
    plan.install(cluster)
    result = cluster.run()
    assert result.completed

    report = verify_fault_soundness(tracer.trace)
    assert report.ok, report.violations
    assert report.dropped_sends >= 1  # the crash window ate something

    graph = HBGraph(tracer.trace)
    delivered = len(tracer.trace.of_kind(OpKind.SOCK_RECV))
    assert graph.edge_counts.get("Msoc", 0) == delivered


def test_verify_fault_soundness_flags_violations():
    """A hand-built inconsistent trace (recv for a dropped send) fails."""
    from repro.ids import CallStack
    from repro.runtime.ops import OpEvent

    def record(seq, kind, tag, **extra):
        return OpEvent(
            seq=seq,
            kind=kind,
            obj_id=tag,
            node="n",
            tid=0,
            thread_name="t",
            segment=0,
            callstack=CallStack(),
            extra=extra,
        )

    bad = [
        record(1, OpKind.SOCK_SEND, "m1", dropped=True),
        record(2, OpKind.SOCK_RECV, "m1"),
    ]
    report = verify_fault_soundness(bad)
    assert not report.ok
    assert "m1" in report.violations[0]

    over_delivered = [
        record(1, OpKind.SOCK_SEND, "m2"),
        record(2, OpKind.SOCK_RECV, "m2"),
        record(3, OpKind.SOCK_RECV, "m2"),
    ]
    report = verify_fault_soundness(over_delivered)
    assert not report.ok


def test_install_rejects_unknown_targets():
    cluster = Cluster(seed=0)
    cluster.add_node("a")
    plan = FaultPlan([FaultAction(5, FaultKind.CRASH, target="ghost")])
    with pytest.raises(ReproError, match="unknown node 'ghost'"):
        plan.install(cluster)
