"""Scheduling strategies."""

from repro.runtime import (
    Cluster,
    PreferredThreadStrategy,
    RandomStrategy,
    RoundRobinStrategy,
)


def _run_with(strategy, seed=0):
    cluster = Cluster(seed=seed, strategy=strategy)
    node = cluster.add_node("n")
    order = []

    def worker(tag):
        def body():
            for _ in range(3):
                order.append(tag)
                node.shared_var(f"v{tag}").set(tag)

        return body

    node.spawn(worker("a"), name="a")
    node.spawn(worker("b"), name="b")
    node.spawn(worker("c"), name="c")
    cluster.run()
    return order


def test_round_robin_is_fair_and_deterministic():
    first = _run_with(RoundRobinStrategy())
    second = _run_with(RoundRobinStrategy())
    assert first == second
    # Every thread appears; no thread starves to the end.
    assert set(first) == {"a", "b", "c"}


def test_preferred_thread_runs_first():
    strategy = PreferredThreadStrategy(
        preferred=["n.c"], fallback=RoundRobinStrategy()
    )
    order = _run_with(strategy)
    # The preferred thread finishes all its work before anyone else.
    assert order[:3] == ["c", "c", "c"]


def test_random_strategy_seed_determinism():
    assert _run_with(RandomStrategy(5)) == _run_with(RandomStrategy(5))


def test_random_strategies_differ_across_seeds():
    runs = {tuple(_run_with(RandomStrategy(seed))) for seed in range(8)}
    assert len(runs) > 1
