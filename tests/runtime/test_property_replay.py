"""Property-based tests: record/replay over random workloads."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import Cluster, RandomStrategy, sleep
from repro.runtime.replay import RecordingStrategy, ReplayStrategy

ACTIONS = st.sampled_from(["set", "get", "bump", "sleep", "post"])
SCRIPTS = st.lists(
    st.lists(ACTIONS, min_size=1, max_size=5), min_size=1, max_size=3
)


def _build(cluster, scripts, observations):
    node = cluster.add_node("n")
    var = node.shared_var("v", 0)
    counter = node.shared_counter("c")
    q = node.event_queue("q")
    q.register("e", lambda ev: observations.append(("evt", counter.get())))

    def make(tag, script):
        def body():
            for action in script:
                if action == "set":
                    var.set(tag)
                elif action == "get":
                    observations.append((tag, var.get()))
                elif action == "bump":
                    counter.increment()
                elif action == "sleep":
                    sleep(2)
                elif action == "post":
                    q.post("e")

        return body

    for i, script in enumerate(scripts):
        node.spawn(make(i, script), name=f"w{i}")


@settings(max_examples=25, deadline=None)
@given(scripts=SCRIPTS, seed=st.integers(0, 9))
def test_replay_reproduces_observations(scripts, seed):
    recorder = RecordingStrategy(RandomStrategy(seed))
    original = Cluster(seed=seed, strategy=recorder, max_steps=20_000)
    first = []
    _build(original, scripts, first)
    r1 = original.run()
    assert not r1.harmful

    replayed = Cluster(
        seed=0, strategy=ReplayStrategy(recorder.schedule), max_steps=20_000
    )
    second = []
    _build(replayed, scripts, second)
    r2 = replayed.run()
    assert not r2.harmful
    assert first == second
    assert r1.steps == r2.steps
