"""``PipelineConfig.sampling`` through the full pipeline.

Sampling composes with the selective scope: the scope decides which
accesses are *eligible*, the sampler enforces a *budget* on them.  A
sampled run downgrades report confidence to ``"sampled"``; rate 1.0 is
a guaranteed no-op that reproduces the unsampled pipeline exactly.
"""

import pytest

from repro.pipeline import DCatch, PipelineConfig
from repro.systems import workload_by_id


def _run(**kwargs):
    config = PipelineConfig(trigger=False, **kwargs)
    return DCatch(workload_by_id("ZK-1144"), config).run()


def _pairs(result):
    return {(c.first.seq, c.second.seq) for c in result.detection.candidates}


def test_sampled_run_marks_reports():
    result = _run(sampling="0.5")
    assert result.trace.sampled is True
    assert result.detection.confidence == "sampled"
    assert result.reports
    assert all(r.confidence == "sampled" for r in result.reports.reports)


def test_rate_one_sampling_matches_unsampled_run():
    plain = _run()
    sampled = _run(sampling="1.0")
    assert sampled.trace.sampled is False
    assert sampled.detection.confidence == plain.detection.confidence
    assert _pairs(sampled) == _pairs(plain)
    assert sampled.trace.dump_thread_files() == plain.trace.dump_thread_files()


def test_sampled_runs_are_reproducible():
    first = _run(sampling="0.3", sampling_seed=4)
    second = _run(sampling="0.3", sampling_seed=4)
    assert first.trace.dump_thread_files() == second.trace.dump_thread_files()
    assert _pairs(first) == _pairs(second)


def test_invalid_sampling_spec_rejected_up_front():
    with pytest.raises(ValueError):
        _run(sampling="bogus")
