"""Signal semantics of ``repro stream``, exercised through real
subprocesses: SIGTERM mid-pass seals the stream checkpoint and exits
130; ``--resume`` picks up at the sealed offset, does not reprocess
retired windows, and the resumed report is byte-identical to an
uninterrupted run's."""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.workload import generate_workload

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC = os.path.join(REPO, "src")

WINDOW = "16"  # small window -> many probe points for the stall hook


def _env(stall=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("DCATCH_STALL", None)
    if stall:
        env["DCATCH_STALL"] = stall
    return env


def _stream(*args, stall=None, wait=True):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "stream", *args],
        env=_env(stall),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    if not wait:
        return proc
    out, err = proc.communicate(timeout=120)
    return proc.returncode, out, err


def _wait_for(predicate, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return False


@pytest.fixture(scope="module")
def wal_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("workload")
    generated = generate_workload("minizk", "small", seed=7, out_dir=str(out))
    return generated.wal_dir


@pytest.fixture(scope="module")
def clean_report(wal_dir, tmp_path_factory):
    """The uninterrupted run's canonical report: the byte oracle."""
    path = str(tmp_path_factory.mktemp("oracle") / "report.json")
    code, out, err = _stream(wal_dir, "--window", WINDOW, "--report-out", path)
    assert code == 0, err
    with open(path, "rb") as fh:
        return fh.read()


def test_sigterm_seals_checkpoint_and_resume_skips_retired_windows(
    tmp_path, wal_dir, clean_report
):
    ckpt = str(tmp_path / "stream.ckpt")
    # 0.15s per window probe: the first checkpoint (8 windows in) lands
    # ~1.2s in, well before the ~4s full pass finishes.
    proc = _stream(
        wal_dir,
        "--window",
        WINDOW,
        "--checkpoint",
        ckpt,
        stall="stream_window:0.15",
        wait=False,
    )
    try:
        assert _wait_for(
            lambda: os.path.exists(ckpt) and os.path.getsize(ckpt) > 0
        )
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert proc.returncode == 130, err
    assert "interrupted" in err
    assert "checkpoint sealed" in err
    assert "--resume" in err  # the hint names the resume flags

    report = str(tmp_path / "report.json")
    code, out, err = _stream(
        wal_dir,
        "--window",
        WINDOW,
        "--checkpoint",
        ckpt,
        "--resume",
        "--report-out",
        report,
    )
    assert code == 0, err
    # resumed mid-stream: some but not all records were retired
    assert "resumed from checkpoint at " in out
    assert "retired windows not reprocessed" in out
    resumed_at = int(
        out.split("resumed from checkpoint at ", 1)[1].split()[0]
    )
    total = int(out.split("streamed ", 1)[1].split()[0])
    assert 0 < resumed_at < total
    with open(report, "rb") as fh:
        assert fh.read() == clean_report


def test_resume_without_interrupt_reprocesses_nothing(
    tmp_path, wal_dir, clean_report
):
    ckpt = str(tmp_path / "stream.ckpt")
    code, out, err = _stream(wal_dir, "--window", WINDOW, "--checkpoint", ckpt)
    assert code == 0, err

    report = str(tmp_path / "report.json")
    code, out, err = _stream(
        wal_dir,
        "--window",
        WINDOW,
        "--checkpoint",
        ckpt,
        "--resume",
        "--report-out",
        report,
    )
    assert code == 0, err
    resumed_at = int(
        out.split("resumed from checkpoint at ", 1)[1].split()[0]
    )
    total = int(out.split("streamed ", 1)[1].split()[0])
    assert resumed_at == total  # everything already retired
    with open(report, "rb") as fh:
        assert fh.read() == clean_report
