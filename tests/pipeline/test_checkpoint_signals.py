"""Crash and signal semantics of the checkpointed pipeline, exercised
through real subprocesses: SIGINT seals the checkpoint and exits 130;
SIGKILL mid-stage leaves a resumable directory; ``--resume`` reproduces
the uninterrupted run byte for byte."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC = os.path.join(REPO, "src")
BUG = "CA-1011"


def _env(stall=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("DCATCH_STALL", None)
    if stall:
        env["DCATCH_STALL"] = stall
    return env


def _run_cli(*args, stall=None, wait=True):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "run", BUG, *args],
        env=_env(stall),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    if not wait:
        return proc
    out, err = proc.communicate(timeout=120)
    return proc.returncode, out, err


def _wait_for(predicate, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return False


def _manifest(ckdir):
    try:
        with open(os.path.join(ckdir, "manifest.json")) as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def _stage_completed(ckdir, stage):
    manifest = _manifest(ckdir)
    if manifest is None:
        return False
    return manifest["stages"].get(stage, {}).get("completed", False)


@pytest.fixture(scope="module")
def clean_reports(tmp_path_factory):
    """The uninterrupted run's saved reports: the byte-identity oracle."""
    path = str(tmp_path_factory.mktemp("oracle") / "reports.json")
    code, out, err = _run_cli("--save-reports", path)
    assert code == 0, err
    with open(path) as fh:
        return fh.read()


def test_sigint_during_hb_build_seals_and_resumes(tmp_path, clean_reports):
    ckdir = str(tmp_path / "ck")
    proc = _run_cli(
        "--checkpoint-dir", ckdir, stall="hb_build:60", wait=False
    )
    try:
        # the stall point sits between the trace seal and HB construction
        assert _wait_for(lambda: _stage_completed(ckdir, "trace"))
        proc.send_signal(signal.SIGINT)
        out, err = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert proc.returncode == 130
    assert "interrupted" in err
    assert "--resume" in err  # the hint names the resume flag

    saved = str(tmp_path / "reports.json")
    code, out, err = _run_cli(
        "--checkpoint-dir", ckdir, "--resume", "--save-reports", saved
    )
    assert code == 0, err
    assert "resumed: skipped trace" in out
    assert open(saved).read() == clean_reports


def test_sigkill_mid_detect_resumes_byte_identical(tmp_path, clean_reports):
    ckdir = str(tmp_path / "ck")
    proc = _run_cli(
        "--checkpoint-dir", ckdir, stall="detect_shard:60", wait=False
    )
    try:
        # first detect shard lands in the WAL, then the run stalls
        shards = os.path.join(ckdir, "detect-shards.jsonl")
        assert _wait_for(
            lambda: os.path.exists(shards) and os.path.getsize(shards) > 0
        )
        proc.kill()  # SIGKILL: no handler, no chance to seal
        proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()

    manifest = _manifest(ckdir)
    for stage in ("trace", "hb", "reach"):
        assert manifest["stages"][stage]["completed"] is True
    assert not manifest["stages"].get("detect", {}).get("completed", False)

    saved = str(tmp_path / "reports.json")
    code, out, err = _run_cli(
        "--checkpoint-dir", ckdir, "--resume", "--save-reports", saved
    )
    assert code == 0, err
    assert "resumed: skipped trace, hb, reach" in out
    assert open(saved).read() == clean_reports


def test_sigint_during_trigger_resumes_verdicts(tmp_path, clean_reports):
    ckdir = str(tmp_path / "ck")
    proc = _run_cli(
        "--checkpoint-dir", ckdir, stall="trigger_report:60", wait=False
    )
    try:
        assert _wait_for(lambda: _stage_completed(ckdir, "prune"))
        proc.send_signal(signal.SIGINT)
        out, err = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert proc.returncode == 130

    saved = str(tmp_path / "reports.json")
    code, out, err = _run_cli(
        "--checkpoint-dir", ckdir, "--resume", "--save-reports", saved
    )
    assert code == 0, err
    assert "resumed: skipped" in out
    assert open(saved).read() == clean_reports
