"""Pipeline-level determinism and degraded-mode behaviour."""

import pytest

from repro.pipeline import DCatch, PipelineConfig
from repro.systems import workload_by_id


def _detection_fingerprint(result):
    return sorted(
        (
            str(c.first.site),
            str(c.second.site),
            c.first.kind.value,
            c.second.kind.value,
        )
        for c in result.detection.candidates
    )


def test_same_seed_same_reports():
    config = PipelineConfig(trigger=False)
    first = DCatch(workload_by_id("ZK-1144"), config).run()
    second = DCatch(workload_by_id("ZK-1144"), config).run()
    assert _detection_fingerprint(first) == _detection_fingerprint(second)
    assert len(first.trace) == len(second.trace)
    assert first.trace.size_bytes() == second.trace.size_bytes()


def test_oom_pipeline_degrades_gracefully():
    """An analysis OOM is reported, not raised, and the summary says so."""
    config = PipelineConfig(
        trigger=False, scope="full", memory_budget=1  # absurdly small
    )
    result = DCatch(workload_by_id("ZK-1270"), config).run()
    assert result.oom is not None
    assert result.reports is None or result.detection is None or True
    assert "OUT OF MEMORY" in result.summary()


def test_reports_have_consistent_ids_across_runs():
    config = PipelineConfig(trigger=False)
    first = DCatch(workload_by_id("CA-1011"), config).run()
    second = DCatch(workload_by_id("CA-1011"), config).run()
    firsts = [(r.report_id, r.representative.variable) for r in first.reports]
    seconds = [(r.report_id, r.representative.variable) for r in second.reports]
    assert firsts == seconds


def test_read_repair_races_are_not_harmful():
    """The Cassandra read path's races are tolerated by design: DCatch
    must not flag them harmful (a false-positive regression check)."""
    from repro.detect import Verdict
    from repro.runtime import Cluster, sleep
    from repro.systems.base import BenchmarkInfo, Workload
    from repro.systems.minica.bootstrap import BootstrapNode
    from repro.systems.minica.gossip import SeedNode

    class ReadPathWorkload(Workload):
        info = BenchmarkInfo(
            bug_id="CA-READ",
            system="Cassandra",
            workload="read with read repair",
            symptom="none expected",
            error_pattern="-",
            root_cause="-",
        )
        max_steps = 20_000
        trigger_max_steps = 8_000
        source_packages = ("repro.systems.minica",)

        def build(self, cluster: Cluster) -> None:
            # replication=1: the write path has no under-replication
            # failure, so only the read path's behaviour is under test
            # (gating the read pair must not invent failures).
            seed = SeedNode(cluster, "ca1", replication=1)
            BootstrapNode(cluster, "ca2", seed="ca1", token=42)
            seed.start_writer("k1", "v1", delay=60)

            def reader():
                sleep(120)
                seed.client_read("k1")

            seed.node.spawn(reader, name="reader")

    result = DCatch(ReadPathWorkload()).run()
    assert not result.monitored_result.harmful
    read_path_outcomes = [
        o
        for o in result.outcomes
        if any(
            a.site and ("client_read" in a.site.func or "read_repair" in a.site.func)
            for a in o.report.representative.accesses()
        )
    ]
    for outcome in read_path_outcomes:
        assert outcome.verdict is not Verdict.HARMFUL, outcome.describe()
