"""Checkpoint/resume and resource-governed degradation, end to end."""

import json

import pytest

from repro.detect.export import dump_reports
from repro.errors import CheckpointError
from repro.hb.graph import HBGraph
from repro.pipeline import DCatch, PipelineConfig
from repro.systems import workload_by_id
from repro.trace.scope import FullScope
from repro.trace.tracer import Tracer


def _reports_json(result):
    return dump_reports(result.reports)


def test_resume_skips_all_stages_and_reports_are_byte_identical(tmp_path):
    ckdir = str(tmp_path / "ck")
    plain = DCatch(workload_by_id("CA-1011"), PipelineConfig()).run()

    first = DCatch(
        workload_by_id("CA-1011"), PipelineConfig(checkpoint_dir=ckdir)
    ).run()
    assert _reports_json(first) == _reports_json(plain)
    assert all(status == "ok" for status in first.stage_status.values())

    resumed = DCatch(
        workload_by_id("CA-1011"),
        PipelineConfig(checkpoint_dir=ckdir, resume=True),
    ).run()
    assert _reports_json(resumed) == _reports_json(plain)
    assert set(resumed.stages_skipped) == {
        "trace",
        "hb",
        "reach",
        "detect",
        "prune",
        "trigger",
    }
    assert all(
        status == "skipped" for status in resumed.stage_status.values()
    )
    skipped = resumed.metrics["checkpoint_stages_skipped_total"]
    assert skipped["value"] >= 6
    # restored trigger outcomes carry their verdicts
    assert resumed.verdict_counts() == plain.verdict_counts()
    assert [o.verdict for o in resumed.outcomes] == [
        o.verdict for o in first.outcomes
    ]


def test_resume_after_partial_detect_merges_checkpointed_shards(tmp_path):
    """Pre-seed the detect shard log with a prefix of the real results:
    resume must merge them without re-enumerating, byte-identically."""
    from repro.analysis.checkpoint import CheckpointStore, config_fingerprint

    ckdir = str(tmp_path / "ck")
    config = PipelineConfig(checkpoint_dir=ckdir)
    full = DCatch(workload_by_id("ZK-1144"), config).run()

    # build a second checkpoint with trace+hb+reach sealed and only the
    # first detect shard present (simulating a crash after one shard)
    crashed = str(tmp_path / "crashed")
    store = CheckpointStore(
        directory=crashed,
        benchmark="ZK-1144",
        config_fp=config_fingerprint("ZK-1144", config),
    )
    old = CheckpointStore(
        directory=ckdir,
        benchmark="ZK-1144",
        config_fp=config_fingerprint("ZK-1144", config),
        resume=True,
    )
    for stage in ("trace", "hb", "reach"):
        store.seal_stage(stage, old.load_stage(stage))
    store.set_trace_fingerprint(old.manifest["trace_fingerprint"])
    shards = old.load_shards("detect")
    assert shards, "full run should have checkpointed detect shards"
    store.shard_log("detect").append(shards[0])
    store.seal()

    config2 = PipelineConfig(checkpoint_dir=crashed, resume=True)
    resumed = DCatch(workload_by_id("ZK-1144"), config2).run()
    assert _reports_json(resumed) == _reports_json(full)
    assert set(resumed.stages_skipped) == {"trace", "hb", "reach"}
    restored = resumed.metrics["checkpoint_shards_resumed_total"]
    assert restored["value"] >= 1


def test_trace_fingerprint_is_append_order_independent():
    """HB-4539's live trace appends records out of seq order; the
    restored (seq-sorted) trace must still match its fingerprint."""
    from repro.analysis import checkpoint as ckpt

    dcatch = DCatch(workload_by_id("HB-4539"), PipelineConfig(trigger=False))
    base = dcatch.run_base()
    monitored, trace = dcatch.run_traced()
    payload = json.loads(
        json.dumps(ckpt.trace_stage_payload(trace, base, monitored))
    )
    restored, _, _ = ckpt.restore_trace_stage(payload)
    assert ckpt.trace_fingerprint(restored) == ckpt.trace_fingerprint(trace)


def test_resume_without_checkpoint_dir_raises():
    config = PipelineConfig(resume=True)
    with pytest.raises(CheckpointError, match="checkpoint directory"):
        DCatch(workload_by_id("ZK-1144"), config).run()


def test_checkpoint_overhead_files_on_disk(tmp_path):
    ckdir = tmp_path / "ck"
    DCatch(
        workload_by_id("ZK-1144"),
        PipelineConfig(checkpoint_dir=str(ckdir), trigger=False),
    ).run()
    manifest = json.load(open(ckdir / "manifest.json"))
    assert manifest["format"] == "repro-checkpoint"
    for stage in ("trace", "hb", "reach", "detect"):
        assert manifest["stages"][stage]["completed"] is True
        # CRC recorded for every sealed payload
        assert len(manifest["stages"][stage]["crc"]) == 8
    assert (ckdir / "detect-shards.jsonl").exists()


def _uncompressed_budget(bug_id):
    """A byte budget the chain backend fits but the bit matrix does not
    (the Table 8 blow-up, reproduced deliberately)."""
    workload = workload_by_id(bug_id)
    cluster = workload.cluster(0)
    tracer = Tracer(scope=FullScope()).bind(cluster)
    cluster.run()
    trace = tracer.trace
    n = len(trace.records)
    chain = HBGraph(
        trace, memory_budget=10**12, compress_mem=False, reach_backend="chain"
    )
    chain_bytes = chain.reach_stats()["bytes"]
    bitset_bytes = (n * n) // 8
    assert chain_bytes < bitset_bytes
    return (chain_bytes + bitset_bytes) // 2


def test_bitset_oom_degrades_to_chain_and_completes():
    """The ladder's first rung: a bitset OOM retries with the chain
    backend instead of abandoning analysis."""
    budget = _uncompressed_budget("ZK-1270")
    config = PipelineConfig(
        scope="full",
        compress_mem=False,
        memory_budget=budget,
        monitored_seed=0,
        trigger=False,
        prune=False,
    )
    result = DCatch(workload_by_id("ZK-1270"), config).run()
    assert result.oom is None
    assert result.detection is not None
    assert result.degradation == ["reach_chain"]
    assert result.degraded
    assert result.stage_status["reach"] == "degraded"
    assert "reach_chain" in result.summary()
    series = result.metrics["governor_degradations_total"]["series"]
    assert "rung=reach_chain,stage=reach" in series
    # the surviving analysis matches an unconstrained chain run
    reference = DCatch(
        workload_by_id("ZK-1270"),
        PipelineConfig(
            scope="full",
            compress_mem=False,
            reach_backend="chain",
            monitored_seed=0,
            trigger=False,
            prune=False,
        ),
    ).run()
    assert len(result.detection.candidates) == len(
        reference.detection.candidates
    )


def test_whole_ladder_exhausted_still_reports_oom():
    """When even the chain backend cannot fit, the stage is degraded and
    the OOM is recorded — never raised."""
    config = PipelineConfig(trigger=False, scope="full", memory_budget=1)
    result = DCatch(workload_by_id("ZK-1270"), config).run()
    assert result.oom is not None
    assert result.detection is None
    assert "reach_chain" in result.degradation
    assert "abandoned" in result.degradation
    assert result.stage_failures.get("analysis") == 1
    assert "OUT OF MEMORY" in result.summary()


def test_rss_pressure_engages_detect_rungs():
    """An absurd RSS budget trips the detect_serial and truncate_pairs
    rungs; the pipeline still completes."""
    config = PipelineConfig(
        trigger=False, detect_workers=2, memory_budget_mb=1
    )
    result = DCatch(workload_by_id("ZK-1144"), config).run()
    assert result.oom is None
    assert result.detection is not None
    assert "detect_serial" in result.degradation
    assert "truncate_pairs" in result.degradation
    assert result.detection.workers == 1  # the pool was shed
    assert result.degraded
    series = result.metrics["governor_degradations_total"]["series"]
    assert "rung=detect_serial,stage=detect" in series
    assert "rung=truncate_pairs,stage=detect" in series
    assert result.metrics["governor_rss_mb"]["value"] > 0


def test_stage_deadline_marks_trigger_degraded():
    """A zero deadline lets no trigger report run; outcomes stay empty
    and the stage is degraded, not wedged."""
    config = PipelineConfig(max_stage_seconds=0.0)
    result = DCatch(workload_by_id("ZK-1144"), config).run()
    assert result.stage_status.get("trigger") == "degraded"
    assert result.outcomes == []
    series = result.metrics["governor_deadline_exceeded_total"]["series"]
    assert "stage=trigger" in series


def test_deadline_detect_stops_early():
    config = PipelineConfig(max_stage_seconds=0.0, trigger=False, prune=False)
    result = DCatch(workload_by_id("ZK-1144"), config).run()
    assert result.detection is not None
    assert result.detection.stopped_early
    assert result.stage_status.get("detect") == "degraded"
    assert result.degraded


def test_deadline_cut_detect_is_not_sealed_and_resume_completes(tmp_path):
    """A detection truncated by the wall-clock deadline must not seal as
    a completed stage: resuming with a fresh budget re-enters detection
    and enumerates the remaining locations instead of skipping a
    permanently partial result."""
    import os

    ckdir = str(tmp_path / "ck")
    reference = DCatch(
        workload_by_id("ZK-1144"), PipelineConfig(trigger=False, prune=False)
    ).run()

    cut = DCatch(
        workload_by_id("ZK-1144"),
        PipelineConfig(
            max_stage_seconds=0.0,
            trigger=False,
            prune=False,
            checkpoint_dir=ckdir,
        ),
    ).run()
    assert cut.detection.stopped_early
    manifest = json.load(open(os.path.join(ckdir, "manifest.json")))
    assert not manifest["stages"].get("detect", {}).get("completed")

    resumed = DCatch(
        workload_by_id("ZK-1144"),
        PipelineConfig(
            trigger=False, prune=False, checkpoint_dir=ckdir, resume=True
        ),
    ).run()
    assert not resumed.detection.stopped_early
    assert "detect" not in resumed.stages_skipped
    assert {"trace", "hb", "reach"} <= set(resumed.stages_skipped)
    assert _reports_json(resumed) == _reports_json(reference)


def test_fresh_run_ignores_stale_checkpoint_directory(tmp_path):
    """Re-running *without* --resume in a used checkpoint directory —
    exactly what the mismatch errors advise — must rebuild from scratch,
    not merge shard results computed from a different trace/config."""
    ckdir = str(tmp_path / "ck")
    reference = DCatch(
        workload_by_id("ZK-1144"),
        PipelineConfig(trigger=False, checkpoint_dir=ckdir),
    ).run()

    # different benchmark, same directory: its shards reference seqs
    # that do not exist in ZK-1144's trace
    DCatch(
        workload_by_id("CA-1011"),
        PipelineConfig(trigger=False, checkpoint_dir=ckdir),
    ).run()

    again = DCatch(
        workload_by_id("ZK-1144"),
        PipelineConfig(trigger=False, checkpoint_dir=ckdir),
    ).run()
    assert again.stages_skipped == []
    assert _reports_json(again) == _reports_json(reference)
