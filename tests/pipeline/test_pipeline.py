"""End-to-end pipeline behaviour on a fast benchmark."""

import pytest

from repro.detect import Verdict
from repro.pipeline import DCatch, PipelineConfig
from repro.systems import workload_by_id


@pytest.fixture(scope="module")
def zk1144_result():
    return DCatch(workload_by_id("ZK-1144")).run()


def test_monitored_run_correct(zk1144_result):
    assert not zk1144_result.monitored_result.harmful
    assert zk1144_result.oom is None


def test_stages_all_ran(zk1144_result):
    result = zk1144_result
    assert result.detection is not None
    assert result.reports_pre_prune is not None
    assert result.prune_result is not None
    assert result.reports is not None
    for key in ("base_seconds", "tracing_seconds", "analysis_seconds",
                "pruning_seconds", "trigger_seconds"):
        assert result.timings[key] >= 0


def test_root_bug_confirmed_harmful(zk1144_result):
    harmful = [
        o for o in zk1144_result.outcomes if o.verdict is Verdict.HARMFUL
    ]
    assert harmful
    rep = harmful[0].report.representative
    assert "accepted_epoch" in rep.variable


def test_verdict_counts_views(zk1144_result):
    static = zk1144_result.verdict_counts("static")
    callstack = zk1144_result.verdict_counts("callstack")
    assert static["harmful"] >= 1
    assert callstack["harmful"] >= static["harmful"] - 1
    assert set(static) == {"harmful", "benign", "serial"}


def test_summary_renders(zk1144_result):
    text = zk1144_result.summary()
    assert "ZK-1144" in text
    assert "DCatch reports" in text


def test_no_trigger_config():
    config = PipelineConfig(trigger=False)
    result = DCatch(workload_by_id("ZK-1270"), config).run()
    assert result.outcomes == []
    assert result.reports is not None
    assert all(r.verdict is Verdict.UNKNOWN for r in result.reports)


def test_full_scope_config_traces_more():
    selective = DCatch(
        workload_by_id("ZK-1270"), PipelineConfig(trigger=False)
    ).run()
    full = DCatch(
        workload_by_id("ZK-1270"),
        PipelineConfig(trigger=False, scope="full"),
    ).run()
    assert len(full.trace) > len(selective.trace)


def test_monitored_seed_override():
    config = PipelineConfig(trigger=False, monitored_seed=3)
    result = DCatch(workload_by_id("ZK-1144"), config).run()
    assert result.monitored_result.seed == 3
