"""``detect_mode="sync-preserving"`` through the full pipeline.

The SP tier never changes *what* is reported — the candidate list is
the batch HB list — it changes what the downstream stages trust: SP
survivors become ``sp-sound`` reports that rank first in pruning and
trigger order, and the summary says how many HB-only pairs the sound
tier set aside.
"""

import pytest

from repro.detect.report import SOUNDNESS_TIERS
from repro.pipeline import DCatch, PipelineConfig
from repro.systems import workload_by_id


def _pairs(result):
    return {
        (c.first.seq, c.second.seq) for c in result.detection.candidates
    }


@pytest.fixture(scope="module")
def sp_result():
    config = PipelineConfig(trigger=False, detect_mode="sync-preserving")
    return DCatch(workload_by_id("ZK-1144"), config).run()


def test_sp_mode_keeps_batch_candidates(sp_result):
    batch = DCatch(
        workload_by_id("ZK-1144"), PipelineConfig(trigger=False)
    ).run()
    assert _pairs(sp_result) == _pairs(batch)


def test_sp_mode_annotates_and_tiers_reports(sp_result):
    detection = sp_result.detection
    assert detection.sp_pairs is not None
    assert detection.sp_pairs <= _pairs(sp_result)
    assert all(r.soundness in SOUNDNESS_TIERS for r in sp_result.reports)
    for report in sp_result.reports:
        expected = (
            "sp-sound"
            if any(
                detection.candidate_soundness(c) == "sp-sound"
                for c in report.candidates
            )
            else "hb-predicted"
        )
        assert report.soundness == expected


def test_sp_mode_summary_mentions_tiers(sp_result):
    summary = sp_result.summary()
    assert "sync-preserving:" in summary
    assert "sp-sound" in summary


def test_batch_mode_reports_stay_on_default_tier():
    result = DCatch(
        workload_by_id("ZK-1144"), PipelineConfig(trigger=False)
    ).run()
    assert result.detection.sp_pairs is None
    assert all(r.soundness == "hb-predicted" for r in result.reports)
    assert "sync-preserving:" not in result.summary()


def test_unknown_detect_mode_rejected():
    with pytest.raises(ValueError):
        DCatch(
            workload_by_id("ZK-1144"),
            PipelineConfig(trigger=False, detect_mode="psychic"),
        )


def test_sp_checkpoint_resume_restores_tier(tmp_path):
    config = PipelineConfig(
        trigger=False,
        detect_mode="sync-preserving",
        checkpoint_dir=str(tmp_path),
    )
    first = DCatch(workload_by_id("ZK-1144"), config).run()
    resumed = DCatch(
        workload_by_id("ZK-1144"),
        PipelineConfig(
            trigger=False,
            detect_mode="sync-preserving",
            checkpoint_dir=str(tmp_path),
            resume=True,
        ),
    ).run()
    assert "detect" in resumed.stages_skipped
    assert resumed.detection.sp_pairs == first.detection.sp_pairs
    assert [r.soundness for r in resumed.reports] == [
        r.soundness for r in first.reports
    ]


def test_hb_only_candidates_sidelined_before_trigger():
    """MR-3274's job-lock audit counter yields lock-protected (HB-only)
    candidates: SP demotes them to ``hb-predicted`` and they are gone
    before the trigger queue — here the impact pruner drops them (a
    lock-guarded counter feeds no failure), and whatever *is* kept is in
    trigger order: every sp-sound report ahead of every hb-predicted
    one."""
    result = DCatch(
        workload_by_id("MR-3274"),
        PipelineConfig(trigger=False, detect_mode="sync-preserving"),
    ).run()
    detection = result.detection
    hb_only = len(detection.candidates) - len(detection.sp_pairs)
    assert hb_only >= 1
    pre_tiers = [r.soundness for r in result.reports_pre_prune]
    assert "hb-predicted" in pre_tiers
    assert any(
        r.soundness == "hb-predicted" for r in result.prune_result.pruned
    )
    tiers = [r.soundness for r in result.reports]
    assert tiers == sorted(
        tiers, key=lambda t: t != "sp-sound"
    )  # sound first, weak last
