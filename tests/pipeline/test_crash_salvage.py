"""End-to-end crash durability: a node dies mid-run, the WAL salvages.

The acceptance path for durable tracing — for each mini system:

* a fault plan kills one node mid-run while ``trace_dir`` is set;
* the on-disk WAL of the dead node ends torn and unsealed, yet salvage
  recovers a usable partial trace (non-empty ``SalvageReport``);
* the pipeline itself completes with no stage failures;
* detection over the salvaged trace still reports the seeded candidate,
  downgraded to ``confidence: "partial"``.
"""

import json
import os

import pytest

from repro.detect import detect_races
from repro.pipeline import DCatch, PipelineConfig
from repro.runtime import FaultAction, FaultKind, FaultPlan
from repro.systems import workload_by_id
from repro.trace import salvage_trace


def _crash_run(bug_id, victim, at, tmp_path):
    workload = workload_by_id(bug_id)
    plan = FaultPlan([FaultAction(at, FaultKind.CRASH, target=victim)])
    config = PipelineConfig(
        trigger=False, fault_plan=plan, trace_dir=str(tmp_path)
    )
    result = DCatch(workload, config).run()
    wal_dir = os.path.join(
        str(tmp_path), bug_id, f"seed-{result.monitored_result.seed}"
    )
    return result, wal_dir


def _pairs(detection):
    return {
        tuple(sorted(str(s) for s in pair))
        for pair in detection.static_pairs()
    }


CASES = [
    ("MR-3274", "nm2", 40),  # mini MapReduce: kill a node manager
    ("ZK-1270", "zk2", 60),  # mini ZooKeeper: kill a quorum member
    ("CA-1011", "ca2", 60),  # mini Cassandra: kill the bootstrapper
]


@pytest.mark.parametrize("bug_id,victim,at", CASES)
def test_crash_mid_run_salvages_and_detects_partial(
    bug_id, victim, at, tmp_path
):
    result, wal_dir = _crash_run(bug_id, victim, at, tmp_path)

    # The pipeline itself survived the crash.
    assert result.stage_failures == {}
    assert result.detection is not None

    # The victim's stream is on disk, salvageable, and visibly damaged.
    trace, report = salvage_trace(wal_dir)
    assert os.path.isdir(os.path.join(wal_dir, victim))
    assert report.records_recovered > 0
    assert report.damaged
    assert report.unsealed_segments >= 1
    assert any(key.startswith(victim) for key in report.threads)
    assert trace.partial

    # Analysis of the salvaged trace completes and degrades, not dies.
    detection = detect_races(trace)
    assert detection.confidence == "partial"
    assert len(detection.candidates) >= 1

    # The seeded candidate is still among the reported pairs.
    assert _pairs(result.detection) & _pairs(detection)


def test_survivor_streams_seal_victim_streams_do_not(tmp_path):
    result, wal_dir = _crash_run("MR-3274", "nm2", 40, tmp_path)
    _, report = salvage_trace(wal_dir)
    victim = [t for k, t in report.threads.items() if k.startswith("nm2/")]
    survivors = [
        t for k, t in report.threads.items() if not k.startswith("nm2/")
    ]
    assert victim and survivors
    assert all(t.unsealed_segments >= 1 for t in victim)
    assert all(t.unsealed_segments == 0 for t in survivors)
    assert all(not t.damaged for t in survivors)


def test_clean_run_wal_salvages_losslessly(tmp_path):
    workload = workload_by_id("MR-3274")
    config = PipelineConfig(trigger=False, trace_dir=str(tmp_path))
    result = DCatch(workload, config).run()
    wal_dir = os.path.join(
        str(tmp_path), "MR-3274", f"seed-{result.monitored_result.seed}"
    )
    trace, report = salvage_trace(wal_dir)
    assert not report.damaged
    assert len(trace) == report.records_recovered > 0
    # The durable view equals the in-memory trace, record for record.
    detection = detect_races(trace)
    assert detection.confidence == "full"
    assert _pairs(detection) == _pairs(result.detection)


def test_in_memory_results_identical_with_and_without_wal(tmp_path):
    """trace_dir must be write-only observability: enabling it cannot
    change what the in-memory pipeline computes."""
    workload = workload_by_id("ZK-1270")
    plain = DCatch(workload, PipelineConfig(trigger=False)).run()
    durable = DCatch(
        workload, PipelineConfig(trigger=False, trace_dir=str(tmp_path))
    ).run()
    assert _pairs(plain.detection) == _pairs(durable.detection)
    assert plain.detection.confidence == durable.detection.confidence


def test_campaign_runs_get_distinct_wal_dirs(tmp_path):
    workload = workload_by_id("CA-1011")
    for seed in (0, 1):
        config = PipelineConfig(
            trigger=False, trace_dir=str(tmp_path), monitored_seed=seed
        )
        DCatch(workload, config).run()
    root = os.path.join(str(tmp_path), "CA-1011")
    assert sorted(os.listdir(root)) == ["seed-0", "seed-1"]
