"""End-to-end observability: metrics and spans across the pipeline."""

import pytest

from repro import obs
from repro.pipeline import DCatch, PipelineConfig
from repro.systems import workload_by_id


@pytest.fixture(scope="module")
def observed_result():
    workload = workload_by_id("ZK-1270")
    return DCatch(workload, PipelineConfig()).run()


def test_metrics_snapshot_on_result(observed_result):
    metrics = observed_result.metrics
    assert metrics, "observability on by default"
    for name in (
        "pipeline_runs_total",
        "scheduler_steps_total",
        "scheduler_threads_spawned_total",
        "hb_graphs_built_total",
        "detect_pairs_examined_total",
        "prune_kept_total",
        "trace_records",
        "trigger_runs_total",
    ):
        assert name in metrics, f"missing metric {name}"
    assert metrics["pipeline_runs_total"]["value"] == 1
    assert metrics["scheduler_steps_total"]["value"] > 0


def test_profile_spans_cover_stages(observed_result):
    tracer = observed_result.profile
    assert tracer is not None
    names = {s.name for s in tracer.closed()}
    assert {
        "pipeline.base",
        "pipeline.tracing",
        "pipeline.analysis",
        "pipeline.pruning",
        "pipeline.trigger",
        "hb.build",
        "detect.enumerate",
        "prune.apply",
        "trigger.validate",
    } <= names
    # nesting: hb.build sits under pipeline.analysis
    analysis = tracer.by_name("pipeline.analysis")[0]
    child_names = {s.name for s in tracer.children_of(analysis)}
    assert "hb.build" in child_names


def test_stage_spans_agree_with_timings(observed_result):
    tracer = observed_result.profile
    for stage, key in (
        ("pipeline.tracing", "tracing_seconds"),
        ("pipeline.analysis", "analysis_seconds"),
    ):
        span = tracer.by_name(stage)[0]
        recorded = observed_result.timings[key]
        assert span.wall_seconds == pytest.approx(recorded, abs=0.05)


def test_trace_stats_metrics_agree_with_compute_stats(observed_result):
    from repro.trace import compute_stats

    stats = compute_stats(observed_result.trace)
    metrics = observed_result.metrics
    assert metrics["trace_records"]["value"] == stats.total
    assert metrics["trace_size_bytes"]["value"] == stats.size_bytes
    assert metrics["trace_hb_ops"]["value"] == stats.hb_ops
    assert metrics["trace_lock_ops"]["value"] == stats.lock_ops
    by_cat = metrics["trace_records_by_category"]["series"]
    for category, count in stats.categories.items():
        assert by_cat[f"category={category}"]["value"] == count


def test_observe_false_disables_collection():
    workload = workload_by_id("ZK-1270")
    config = PipelineConfig(trigger=False, observe=False)
    result = DCatch(workload, config).run()
    assert result.metrics == {}
    assert result.profile is None
    assert result.reports is not None  # the pipeline itself still works


def test_message_metrics_populated(observed_result):
    # ZK-1270 is socket-based: delivery counters, no RPCs
    metrics = observed_result.metrics
    assert metrics["messages_sent_total"]["value"] > 0
    assert metrics["messages_delivered_total"]["value"] > 0
    assert "series" in metrics["messages_sent_total"]  # labeled by verb


def test_rpc_metrics_populated():
    # MR-3274 drives its workers over RPC
    workload = workload_by_id("MR-3274")
    result = DCatch(workload, PipelineConfig(trigger=False)).run()
    metrics = result.metrics
    assert metrics["rpc_calls_total"]["value"] > 0
    assert "series" in metrics["rpc_calls_total"]  # labeled by method
    assert metrics["rpc_latency_steps"]["count"] == (
        metrics["rpc_calls_total"]["value"]
        - metrics.get("rpc_timeouts_total", {"value": 0})["value"]
        - metrics.get("rpc_failures_total", {"value": 0})["value"]
    )


def test_fault_injection_metrics():
    from repro.runtime.faults import FaultAction, FaultKind, FaultPlan

    workload = workload_by_id("ZK-1270")
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        cluster = workload.cluster(0)
        plan = FaultPlan(
            [
                FaultAction(120, FaultKind.CRASH, target="zk2"),
                FaultAction(200, FaultKind.RESTART, target="zk2"),
            ]
        )
        plan.install(cluster)
        cluster.run()
    snap = registry.snapshot()
    assert snap["faults_injected_total"]["value"] >= 1
    kinds = snap["faults_injected_total"]["series"]
    assert any(k.startswith("kind=") for k in kinds)


def test_shared_registry_accumulates_across_runs():
    workload = workload_by_id("ZK-1270")
    registry = obs.MetricsRegistry(name="campaign")
    config = PipelineConfig(trigger=False)
    with obs.use_registry(registry):
        DCatch(workload, config).run()
        DCatch(workload, config).run()
    assert registry.snapshot()["pipeline_runs_total"]["value"] == 2
