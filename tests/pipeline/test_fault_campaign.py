"""Fault campaigns through the full pipeline: reproducibility, soundness,
and degrade-don't-die behaviour when stages or runs blow up."""

import pytest

from repro.pipeline import DCatch, PipelineConfig
from repro.runtime import (
    Cluster,
    FaultAction,
    FaultCampaign,
    FaultKind,
    FaultPlan,
    sleep,
)
from repro.systems.base import BenchmarkInfo, Workload
from repro.systems.minica.bootstrap import BootstrapNode
from repro.systems.minica.gossip import SeedNode
from repro.trace.records import dump_records


class SmallRingWorkload(Workload):
    """A two-node mini-Cassandra ring small enough for campaign tests."""

    info = BenchmarkInfo(
        bug_id="CA-CAMPAIGN",
        system="Cassandra",
        workload="bootstrap + write under faults",
        symptom="none expected",
        error_pattern="-",
        root_cause="-",
    )
    max_steps = 20_000
    trigger_max_steps = 8_000
    source_packages = ("repro.systems.minica",)

    def build(self, cluster: Cluster) -> None:
        seed = SeedNode(cluster, "ca1", replication=1)
        BootstrapNode(cluster, "ca2", seed="ca1", token=42)
        seed.start_writer("k1", "v1", delay=60)


def _plan(seed, nodes):
    return FaultPlan(
        [
            FaultAction(25, FaultKind.CRASH, target="ca2"),
            FaultAction(55, FaultKind.RESTART, target="ca2"),
            FaultAction(130, FaultKind.PARTITION, group_a=("ca1",), group_b=("ca2",)),
            FaultAction(160, FaultKind.HEAL, group_a=("ca1",), group_b=("ca2",)),
        ],
        duplicate_probability=0.1,
    )


def _campaign(**kwargs):
    kwargs.setdefault("seeds", (0,))
    kwargs.setdefault("plan_factory", _plan)
    kwargs.setdefault("config", PipelineConfig(trigger=False))
    return FaultCampaign(SmallRingWorkload(), **kwargs)


def test_campaign_is_byte_for_byte_reproducible():
    first = _campaign().run()
    second = _campaign().run()
    assert first.completed_runs and second.completed_runs
    for run_a, run_b in zip(first.runs, second.runs):
        assert run_a.ok and run_b.ok
        assert run_a.plan.describe() == run_b.plan.describe()
        assert dump_records(run_a.result.trace.records) == dump_records(
            run_b.result.trace.records
        )


def test_campaign_traces_differ_across_seeds():
    outcome = _campaign(seeds=(0, 1)).run()
    assert len(outcome.completed_runs) == 2
    a, b = outcome.runs
    assert dump_records(a.result.trace.records) != dump_records(
        b.result.trace.records
    )


def test_campaign_runs_are_sound_under_faults():
    outcome = _campaign(seeds=(0, 1)).run()
    assert not outcome.failed_runs
    assert outcome.sound
    for run in outcome.completed_runs:
        assert run.soundness is not None and run.soundness.ok
        # The crash window plus duplication knob actually did something.
        assert (
            run.soundness.dropped_sends + run.soundness.duplicated_sends
        ) >= 0


def test_campaign_uses_seeded_plans_by_default():
    outcome = FaultCampaign(
        SmallRingWorkload(), seeds=(0,), config=PipelineConfig(trigger=False)
    ).run()
    assert len(outcome.runs) == 1
    run = outcome.runs[0]
    assert run.plan.actions  # a seeded plan was synthesised
    assert "campaign" in outcome.summary().lower() or outcome.summary()


def test_campaign_records_per_run_errors_instead_of_raising():
    class ExplodingWorkload(SmallRingWorkload):
        def build(self, cluster: Cluster) -> None:
            if cluster.seed == 1:
                raise RuntimeError("build refused seed 1")
            super().build(cluster)

    outcome = FaultCampaign(
        ExplodingWorkload(),
        seeds=(0, 1),
        plan_factory=_plan,
        config=PipelineConfig(trigger=False),
    ).run()
    assert len(outcome.runs) == 2
    ok_runs = [r for r in outcome.runs if r.ok]
    failed = outcome.failed_runs
    assert len(ok_runs) == 1 and len(failed) == 1
    assert failed[0].seed == 1
    assert "build refused seed 1" in failed[0].error
    assert "FAILED" in failed[0].describe()


def test_pipeline_reports_trigger_stage_failures():
    """A trigger re-run that blows up becomes a stage failure count on
    the PipelineResult, not an exception out of ``run()``."""

    class FragileTriggerWorkload(SmallRingWorkload):
        def factory(self):
            base = super().factory()
            calls = []

            def build(seed):
                calls.append(seed)
                if len(calls) > 1:
                    raise RuntimeError("trigger cluster refused")
                return base(seed)

            return build

    config = PipelineConfig(trigger_seeds=(0, 1))
    result = DCatch(FragileTriggerWorkload(), config).run()
    assert result.monitored_result is not None
    assert result.outcomes  # the pipeline finished with partial results
    errored = [
        run
        for outcome in result.outcomes
        for run in outcome.runs
        if run.error
    ]
    assert errored, "expected at least one trigger run to error"
    for run in errored:
        assert not run.result.completed
        assert "ERROR" in run.describe()


def test_pipeline_counts_trigger_stage_failures(monkeypatch):
    """If a whole report's validation blows up (not just one re-run),
    the pipeline records a stage failure and keeps going."""
    from repro.trigger import explorer as trigger_explorer

    def explode(self, report, placement):
        raise RuntimeError("validator wedged")

    monkeypatch.setattr(
        trigger_explorer.TriggerModule, "validate_report", explode
    )
    result = DCatch(
        SmallRingWorkload(), PipelineConfig(trigger_seeds=(0,))
    ).run()
    assert result.degraded
    assert result.stage_failures.get("trigger", 0) >= 1
    assert any("validator wedged" in e for e in result.errors)
    assert "partial failures" in result.summary()


def test_faulted_monitored_run_still_detects():
    """Detection runs over the faulted trace: degraded input, full
    pipeline — the point of the degrade-don't-die design."""
    outcome = _campaign().run()
    run = outcome.completed_runs[0]
    assert run.result.detection is not None
    assert run.result.monitored_result.completed
    assert not run.result.errors or run.result.degraded
