"""``detect_mode="streaming"`` through the full pipeline.

Streaming skips the whole-trace HB graph; its candidate set equals
batch detection under the streaming-expressible model (everything but
the whole-trace inference families), and the detect stage checkpoints
and resumes exactly like batch mode.
"""

import pytest

from repro.hb.incremental import STREAM_UNSUPPORTED_FAMILIES
from repro.hb.model import FULL_MODEL
from repro.pipeline import DCatch, PipelineConfig
from repro.systems import workload_by_id

STREAM_MODEL = FULL_MODEL.without(*STREAM_UNSUPPORTED_FAMILIES)


def _pairs(result):
    return {
        (c.first.seq, c.second.seq) for c in result.detection.candidates
    }


@pytest.fixture(scope="module")
def streaming_result():
    config = PipelineConfig(
        trigger=False, detect_mode="streaming", stream_window=64
    )
    return DCatch(workload_by_id("ZK-1144"), config).run()


def test_streaming_mode_runs_all_stages(streaming_result):
    assert streaming_result.detection is not None
    assert streaming_result.detection.graph is None  # no whole-trace graph
    assert streaming_result.reports is not None
    assert streaming_result.timings["analysis_seconds"] >= 0


def test_streaming_matches_batch_restricted_model(streaming_result):
    batch = DCatch(
        workload_by_id("ZK-1144"),
        PipelineConfig(trigger=False, model=STREAM_MODEL),
    ).run()
    assert _pairs(streaming_result) == _pairs(batch)


def test_streaming_mode_window_is_memory_knob_only(streaming_result):
    tight = DCatch(
        workload_by_id("ZK-1144"),
        PipelineConfig(trigger=False, detect_mode="streaming", stream_window=1),
    ).run()
    assert _pairs(tight) == _pairs(streaming_result)


def test_streaming_checkpoint_resume(tmp_path, streaming_result):
    config = PipelineConfig(
        trigger=False,
        detect_mode="streaming",
        stream_window=64,
        checkpoint_dir=str(tmp_path),
    )
    first = DCatch(workload_by_id("ZK-1144"), config).run()
    resumed = DCatch(
        workload_by_id("ZK-1144"),
        PipelineConfig(
            trigger=False,
            detect_mode="streaming",
            stream_window=64,
            checkpoint_dir=str(tmp_path),
            resume=True,
        ),
    ).run()
    assert "detect" in resumed.stages_skipped
    assert _pairs(resumed) == _pairs(first)
    assert _pairs(resumed) == _pairs(streaming_result)


def test_pruner_tolerates_graphless_detection(streaming_result):
    """Regression: the pruner ranks on report soundness tiers and must
    never touch ``detection.graph`` — streaming results carry None."""
    from repro.analysis import SourceIndex, StaticPruner
    from repro.detect import ReportSet

    workload = workload_by_id("ZK-1144")
    detection = streaming_result.detection
    assert detection.graph is None
    reports = ReportSet.from_detection(detection)
    index = SourceIndex.from_modules(workload.modules())
    pruner = StaticPruner.for_trace(index, detection.trace)
    result = pruner.apply(reports, detection=detection)
    assert len(result.kept) + len(result.pruned) == len(reports)


def test_batch_checkpoint_not_reused_by_streaming(tmp_path):
    """detect_mode is part of the checkpoint fingerprint: a batch
    checkpoint never masquerades as a streaming run."""
    from repro.errors import CheckpointError

    batch_config = PipelineConfig(trigger=False, checkpoint_dir=str(tmp_path))
    DCatch(workload_by_id("ZK-1144"), batch_config).run()
    with pytest.raises(CheckpointError):
        DCatch(
            workload_by_id("ZK-1144"),
            PipelineConfig(
                trigger=False,
                detect_mode="streaming",
                checkpoint_dir=str(tmp_path),
                resume=True,
            ),
        ).run()
