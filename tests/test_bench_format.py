"""Table rendering for the evaluation harness."""

from repro.bench import TableResult, check_mark


def _table():
    return TableResult(
        table_id="Table X",
        title="demo",
        headers=["BugID", "Count", "Ratio"],
        rows=[["A-1", 3, 0.5], ["B-2", 10, 1.25]],
        notes=["a note"],
    )


def test_render_contains_everything():
    text = _table().render()
    assert "Table X: demo" in text
    assert "BugID" in text and "Count" in text
    assert "A-1" in text and "B-2" in text
    assert "0.500" in text  # float formatting
    assert "* a note" in text


def test_columns_align():
    lines = _table().render().splitlines()
    header = lines[1]
    separator = lines[2]
    assert len(separator) >= len(header.rstrip())


def test_row_for_and_column():
    table = _table()
    assert table.row_for("A-1")[1] == 3
    assert table.row_for("missing") is None
    assert table.column("Count") == [3, 10]


def test_value_formatting():
    table = TableResult(
        table_id="T",
        title="t",
        headers=["a", "b", "c"],
        rows=[[True, None, "x"]],
    )
    text = table.render()
    assert "yes" in text
    assert "-" in text


def test_check_mark():
    assert check_mark(True) == "X"
    assert check_mark(False) == "-"


def test_bench_guard_turns_crash_into_error_entry(capsys):
    from repro.bench.runner import _guarded

    def boom():
        raise RuntimeError("kaput")

    entry = _guarded("XX-0000", boom)
    assert entry == {"bug_id": "XX-0000", "error": "RuntimeError: kaput"}
    assert "XX-0000 failed" in capsys.readouterr().err


def test_bench_pipeline_entry_has_checkpoint_block():
    from repro.bench.runner import bench_pipeline_data

    document = bench_pipeline_data(bug_ids=("CA-1011",))
    (entry,) = document["benchmarks"]
    assert "error" not in entry
    checkpoint = entry["checkpoint"]
    assert set(checkpoint) >= {
        "overhead_seconds",
        "overhead_ratio",
        "resume_wall_seconds",
        "resume_speedup",
        "stages_skipped",
    }
    assert checkpoint["resume_speedup"] > 1
    # the seal spans are a tiny slice of the analysis wall time
    assert checkpoint["overhead_ratio"] is not None
    assert checkpoint["overhead_ratio"] <= 0.10
    assert checkpoint["bytes_written"] > 0
    assert set(checkpoint["stages_skipped"]) == {
        "trace",
        "hb",
        "reach",
        "detect",
        "prune",
        "trigger",
    }


def test_sampling_bench_block_shape():
    """The ``sampling`` block of BENCH_pipeline.json: per-preset rate
    sweep with recall, kept counts, and the rate-1.0 identity check."""
    from repro.bench.runner import bench_sampling_data

    doc = bench_sampling_data(["small"], rates=(1.0, 0.5))
    assert doc["rates"] == [1.0, 0.5]
    assert doc["system"] == "minimr"
    (preset,) = doc["presets"]
    assert preset["preset"] == "small"
    assert preset["identity_at_rate_1"] is True
    assert preset["trace"]["planted_races"] > 0
    assert len(preset["rates"]) == 2
    full, half = preset["rates"]
    assert full["rate"] == 1.0
    assert full["detection"]["planted_recall"] == 1.0
    assert full["detection"]["confidence"] == "full"
    assert full["records_kept"] == preset["trace"]["records"]
    assert half["records_kept"] <= full["records_kept"]
    assert half["detection"]["confidence"] == "sampled"
    for entry in preset["rates"]:
        assert entry["tracing"]["wall_seconds"] > 0
        assert 0.0 <= entry["detection"]["planted_recall"] <= 1.0
