"""Triggering: controller enforcement, placement rules, verdicts."""

from repro.detect import ReportSet, Verdict, detect_races
from repro.hb import HBGraph
from repro.runtime import Cluster, OpKind, sleep
from repro.trace import FullScope, Tracer
from repro.trigger import (
    GateSpec,
    OrderController,
    PlacementAnalyzer,
    TriggerInterceptor,
    TriggerModule,
)


# --- workloads (module-level so sites are stable across runs) -----------


def build_harmful_kv(cluster):
    """remove-vs-get race; get after remove logs a severe error."""
    node = cluster.add_node("n")
    jmap = node.shared_dict("jmap")

    def seed_then_remove():
        jmap.put("j", "task")
        sleep(20)
        jmap.remove("j")

    def getter():
        sleep(5)
        value = jmap.get("j")
        if value is None:
            node.log.fatal("task vanished")

    node.spawn(seed_then_remove, name="rm")
    node.spawn(getter, name="get")
    return node


def build_benign_kv(cluster):
    """The same race but the reader tolerates a missing entry."""
    node = cluster.add_node("n")
    jmap = node.shared_dict("jmap")

    def seed_then_remove():
        jmap.put("j", "task")
        sleep(20)
        jmap.remove("j")

    def getter():
        sleep(5)
        value = jmap.get("j")
        if value is None:
            node.log.info("not there yet; fine")

    node.spawn(seed_then_remove, name="rm")
    node.spawn(getter, name="get")
    return node


def build_fork_ordered(cluster):
    """Write then fork a reader: accesses are genuinely ordered."""
    node = cluster.add_node("n")
    var = node.shared_var("x", 0)

    def parent():
        var.set(1)
        node.spawn(lambda: var.get(), name="child")

    node.spawn(parent, name="parent")
    return node


def _trace_workload(build, seed=0):
    cluster = Cluster(seed=seed)
    tracer = Tracer(scope=FullScope()).bind(cluster)
    build(cluster)
    result = cluster.run()
    return tracer.trace, result


def _factory(build):
    def make(seed):
        cluster = Cluster(seed=seed, max_steps=50_000)
        build(cluster)
        return cluster

    return make


def _first_report(build):
    trace, result = _trace_workload(build)
    assert not result.harmful, "monitored run must be correct (paper setup)"
    detection = detect_races(trace)
    reports = ReportSet.from_detection(detection)
    key_reports = [
        r
        for r in reports
        if r.representative.location and r.representative.location[1] == "j"
    ]
    assert key_reports, "expected a report on the jmap['j'] entry"
    return trace, detection, key_reports[0]


class TestController:
    def test_grants_desired_order(self):
        cluster = Cluster(seed=0)
        node = cluster.add_node("n")
        order_log = []
        controller = OrderController(("B", "A"))
        cluster.scheduler.on_idle(controller.on_idle)

        def party(name):
            def body():
                from repro.runtime import current_sim_thread

                controller.request(name, current_sim_thread())
                order_log.append(name)
                controller.confirm(name)

            return body

        node.spawn(party("A"), name="a")
        node.spawn(party("B"), name="b")
        cluster.run()
        assert order_log == ["B", "A"]
        assert controller.enforced

    def test_idle_release_prevents_stall(self):
        cluster = Cluster(seed=0)
        node = cluster.add_node("n")
        controller = OrderController(("A", "B"))
        cluster.scheduler.on_idle(controller.on_idle)
        done = []

        def only_b():
            from repro.runtime import current_sim_thread

            controller.request("B", current_sim_thread())
            done.append("B")
            controller.confirm("B")

        node.spawn(only_b, name="b")
        result = cluster.run()
        assert result.completed
        assert done == ["B"]
        assert not controller.enforced
        assert not controller.co_occurred


class TestVerdicts:
    def test_harmful_race_confirmed(self):
        trace, detection, report = _first_report(build_harmful_kv)
        plan = PlacementAnalyzer(trace, detection.graph).plan(report)
        module = TriggerModule(_factory(build_harmful_kv), seeds=(0, 1, 2))
        outcome = module.validate(report, plan)
        assert outcome.verdict is Verdict.HARMFUL
        assert report.verdict is Verdict.HARMFUL

    def test_benign_race_confirmed(self):
        trace, detection, report = _first_report(build_benign_kv)
        plan = PlacementAnalyzer(trace, detection.graph).plan(report)
        module = TriggerModule(_factory(build_benign_kv), seeds=(0, 1, 2))
        outcome = module.validate(report, plan)
        assert outcome.verdict is Verdict.BENIGN

    def test_ordered_pair_classified_serial(self):
        trace, _result = _trace_workload(build_fork_ordered)
        writes = [
            r
            for r in trace.mem_accesses()
            if r.is_write and str(r.obj_id).endswith("n.x")
        ]
        reads = [
            r
            for r in trace.mem_accesses()
            if not r.is_write and str(r.obj_id).endswith("n.x")
        ]
        from repro.detect.races import Candidate
        from repro.detect.report import BugReport
        from repro.trigger import GatePlan

        report = BugReport(
            report_id=1, candidates=[Candidate(writes[0], reads[0])]
        )
        gates = {
            "A": GateSpec(site=writes[0].site, kinds=frozenset({OpKind.MEM_WRITE})),
            "B": GateSpec(site=reads[0].site, kinds=frozenset({OpKind.MEM_READ})),
        }
        plan = GatePlan(gates=gates, rules=["manual"])
        module = TriggerModule(_factory(build_fork_ordered), seeds=(0, 1))
        outcome = module.validate(report, plan)
        assert outcome.verdict is Verdict.SERIAL


class TestPlacement:
    def test_same_queue_rule_moves_gates_to_enqueue(self):
        def build(cluster):
            node = cluster.add_node("n")
            var = node.shared_var("x", 0)
            q = node.event_queue("q", consumers=1)
            q.register("w", lambda ev: var.set(1))
            q.register("r", lambda ev: var.get())

            def poster_w():
                q.post("w")

            def poster_r():
                q.post("r")

            node.spawn(poster_w, name="pw")
            node.spawn(poster_r, name="pr")

        trace, _ = _trace_workload(build)
        detection = detect_races(trace)
        reports = ReportSet.from_detection(detection)
        assert len(reports) >= 1
        plan = PlacementAnalyzer(trace, detection.graph).plan(reports.reports[0])
        assert any("single-consumer queue" in r for r in plan.rules)
        for spec in plan.gates.values():
            assert spec.kinds == frozenset({OpKind.EVENT_CREATE})

    def test_same_lock_rule_moves_gates_before_critical_sections(self):
        def build(cluster):
            node = cluster.add_node("n")
            var = node.shared_var("x", 0)
            lock = node.lock("guard")

            def writer():
                with lock:
                    var.set(1)

            def reader():
                with lock:
                    var.get()

            node.spawn(writer, name="w")
            node.spawn(reader, name="r")

        trace, _ = _trace_workload(build)
        detection = detect_races(trace)
        reports = ReportSet.from_detection(detection)
        assert len(reports) >= 1
        plan = PlacementAnalyzer(trace, detection.graph).plan(reports.reports[0])
        assert any("same lock" in r for r in plan.rules)
        for spec in plan.gates.values():
            assert spec.kinds == frozenset({OpKind.LOCK_ACQUIRE})

    def test_instance_threshold_moves_gate_along_hb(self):
        def build(cluster):
            a = cluster.add_node("a")
            b = cluster.add_node("b")
            var = b.shared_var("x", 0)
            b.rpc_server.register("touch", lambda: var.get())

            def hammer():
                for _ in range(12):
                    b_local_read(var)

            def b_local_read(v):
                v.get()

            def writer():
                a.rpc("b").touch()
                var.set(1)

            b.spawn(hammer, name="hammer")
            b.spawn(writer, name="writer")

        trace, _ = _trace_workload(build)
        detection = detect_races(trace)
        analyzer = PlacementAnalyzer(
            trace, detection.graph, instance_threshold=3
        )
        reports = ReportSet.from_detection(detection)
        hot = [
            r
            for r in reports
            if any(
                a.site and "b_local_read" in a.site.func
                for a in r.representative.accesses()
            )
        ]
        if hot:
            plan = analyzer.plan(hot[0])
            assert plan.gates  # plan exists even for hot sites


def test_gate_spec_matching_by_site_and_kind():
    trace, _ = _trace_workload(build_harmful_kv)
    write = [r for r in trace.mem_accesses() if r.is_write][0]
    spec = GateSpec(site=write.site, kinds=frozenset({write.kind}))
    assert spec.matches(write)
    other = [r for r in trace.mem_accesses() if r.site != write.site][0]
    assert not spec.matches(other)
