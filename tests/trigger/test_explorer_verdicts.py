"""Explorer verdict aggregation across candidates and plan variants."""

from repro.detect import Verdict
from repro.detect.races import Candidate
from repro.detect.report import BugReport
from repro.ids import CallStack, Frame
from repro.runtime import Cluster, OpKind, sleep
from repro.trace import FullScope, Tracer
from repro.trigger import PlacementAnalyzer, TriggerModule


def build_two_phase(cluster):
    """Two racing pairs in one variable: the first candidate's gating
    only proves BENIGN; a later candidate's gating proves HARMFUL."""
    node = cluster.add_node("n")
    slots = node.shared_dict("slots")

    def filler():
        slots.put("a", 1)  # benign vs the reader's get("a")
        sleep(25)
        slots.remove("b")  # harmful vs the reader's get("b")

    def reader():
        sleep(5)
        slots.get("a")
        sleep(5)
        if slots.get("b") is None:
            node.log.fatal("slot b vanished")

    def seeder():
        slots.put("b", 1)

    node.spawn(seeder, name="seeder")
    node.spawn(filler, name="filler")
    node.spawn(reader, name="reader")


def _artifacts():
    cluster = Cluster(seed=0)
    tracer = Tracer(scope=FullScope()).bind(cluster)
    build_two_phase(cluster)
    result = cluster.run()
    assert not result.harmful
    from repro.detect import ReportSet, detect_races

    detection = detect_races(tracer.trace)
    return tracer.trace, detection, ReportSet.from_detection(detection)


def _factory(seed):
    cluster = Cluster(seed=seed, max_steps=20_000)
    build_two_phase(cluster)
    return cluster


def test_most_severe_verdict_wins():
    trace, detection, reports = _artifacts()
    placement = PlacementAnalyzer(trace, detection.graph)
    module = TriggerModule(_factory, seeds=(0, 1))
    harmful = []
    for report in reports:
        outcome = module.validate_report(report, placement)
        if outcome and outcome.verdict is Verdict.HARMFUL:
            harmful.append(report)
    assert harmful, "the slot-b race must be confirmed harmful"
    for report in harmful:
        assert report.verdict is Verdict.HARMFUL
        assert report.verdict_detail


def test_validate_report_returns_outcome_for_empty_plans():
    """A report whose accesses lack sites still gets a graceful answer."""
    frame = Frame("repro/systems/x.py", "f", 1)
    from repro.runtime.ops import OpEvent

    a = OpEvent(
        seq=1, kind=OpKind.MEM_WRITE, obj_id="v", node="n", tid=0,
        thread_name="t", segment=0, callstack=CallStack(),
        location=(1, "k"),
    )
    b = OpEvent(
        seq=2, kind=OpKind.MEM_READ, obj_id="v", node="n", tid=1,
        thread_name="u", segment=1, callstack=CallStack(),
        location=(1, "k"),
    )
    report = BugReport(report_id=1, candidates=[Candidate(a, b)])
    trace, detection, _ = _artifacts()
    placement = PlacementAnalyzer(trace, detection.graph)
    module = TriggerModule(_factory, seeds=(0,))
    outcome = module.validate_report(report, placement)
    # Gates on site=None match nothing: the orders cannot be enforced.
    assert outcome is not None
    assert outcome.verdict in (Verdict.SERIAL, Verdict.UNKNOWN)


def test_prioritize_puts_sampled_after_full_within_tier():
    from repro.trigger.explorer import prioritize_reports

    def report(rid, soundness, confidence):
        return BugReport(
            report_id=rid,
            candidates=[],
            soundness=soundness,
            confidence=confidence,
        )

    ordered = prioritize_reports(
        [
            report(1, "sp-sound", "sampled"),
            report(2, "hb-predicted", "full"),
            report(3, "sp-sound", "full"),
        ]
    )
    # Soundness dominates; within a tier full-confidence goes first.
    assert [r.report_id for r in ordered] == [3, 1, 2]
