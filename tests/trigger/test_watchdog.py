"""The max_wait watchdog: a hung enforcement releases, never wedges."""

import pytest

from repro import obs
from repro.runtime import Cluster, current_sim_thread, sleep
from repro.trigger import OrderController


def test_max_wait_must_be_positive():
    with pytest.raises(ValueError):
        OrderController(("A", "B"), max_wait=0)
    with pytest.raises(ValueError):
        OrderController(("A", "B"), max_wait=-5)


def test_watchdog_releases_lone_party_within_max_wait(capsys):
    """Party B never arrives; the deadline (a scheduler wake hint) fires
    even though the system is otherwise quiescent."""
    cluster = Cluster(seed=0)
    node = cluster.add_node("n")
    controller = OrderController(("B", "A"), max_wait=50)
    controller.attach_scheduler(cluster.scheduler)
    progressed = []

    requested_at = []

    def party_a():
        requested_at.append(cluster.scheduler.clock)
        controller.request("A", current_sim_thread())
        progressed.append(cluster.scheduler.clock)
        controller.confirm("A")

    node.spawn(party_a, name="a")
    result = cluster.run()
    assert result.completed, result.failures.events
    assert progressed, "party A must be released, not deadlocked"
    # Released the moment the deadline passed — not at the step budget.
    assert progressed[0] == requested_at[0] + 50
    assert controller.released_by_watchdog == {"A"}
    assert not controller.enforced
    assert "watchdog released" in capsys.readouterr().err


def test_watchdog_releases_during_livelock():
    """The rest of the system stays busy (the idle hook never fires), so
    only the clock deadline can break the hold."""
    cluster = Cluster(seed=0)
    node = cluster.add_node("n")
    controller = OrderController(("B", "A"), max_wait=40)
    cluster.scheduler.on_idle(controller.on_idle)
    controller.attach_scheduler(cluster.scheduler)
    progressed = []

    def busy_loop():
        for _ in range(60):
            sleep(2)  # keeps the scheduler busy well past the deadline

    def party_a():
        controller.request("A", current_sim_thread())
        progressed.append(cluster.scheduler.clock)
        controller.confirm("A")

    node.spawn(busy_loop, name="busy")
    node.spawn(party_a, name="a")
    result = cluster.run()
    assert result.completed, result.failures.events
    assert progressed
    assert controller.released_by_watchdog == {"A"}
    assert not controller.released_by_idle  # never went idle while held
    assert not controller.enforced


def test_watchdog_releases_both_held_parties():
    """Once one deadline passes, every held party goes: half a release
    would just move the hang to the other gate."""
    cluster = Cluster(seed=0)
    node = cluster.add_node("n")
    # Neither A nor B can be granted: C never arrives... but the order
    # names only two parties, so instead hold both by granting neither:
    # request A and B under order (B, A); B is granted on arrival of
    # both, so use a controller where the first party never confirms.
    controller = OrderController(("B", "A"), max_wait=30)
    controller.attach_scheduler(cluster.scheduler)
    released_at = {}

    def party(name):
        def run():
            controller.request(name, current_sim_thread())
            released_at[name] = cluster.scheduler.clock
            # no confirm: the grant chain stalls after B

        return run

    # A alone first: it is second in the order, so it is held until B
    # confirms — which never happens because B never confirms.
    node.spawn(party("A"), name="a")
    result = cluster.run()
    assert result.completed
    assert "A" in released_at
    assert controller.released_by_watchdog == {"A"}


def test_enforced_run_unaffected_by_watchdog():
    """A healthy enforcement finishes long before the deadline — the
    watchdog must not fire and the run still counts as enforced."""
    cluster = Cluster(seed=0)
    node = cluster.add_node("n")
    controller = OrderController(("A", "B"), max_wait=500)
    controller.attach_scheduler(cluster.scheduler)
    order = []

    def party(name):
        def run():
            controller.request(name, current_sim_thread())
            order.append(name)
            controller.confirm(name)

        return run

    node.spawn(party("A"), name="a")
    node.spawn(party("B"), name="b")
    result = cluster.run()
    assert result.completed
    assert order == ["A", "B"]
    assert controller.enforced
    assert not controller.released_by_watchdog


def test_watchdog_metric_counts_releases():
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        cluster = Cluster(seed=0)
        node = cluster.add_node("n")
        controller = OrderController(("B", "A"), max_wait=20)
        controller.attach_scheduler(cluster.scheduler)
        node.spawn(
            lambda: (
                controller.request("A", current_sim_thread()),
                controller.confirm("A"),
            ),
            name="a",
        )
        cluster.run()
    counter = registry.counter("trigger_watchdog_releases_total")
    assert counter.value >= 1


def test_idle_release_metric_counts_releases(capsys):
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        controller = OrderController(("A", "B"))
        controller.arrived["B"] = "t2"
        controller.on_idle()
    assert registry.counter("trigger_idle_releases_total").value == 1
    assert "idle-released" in capsys.readouterr().err


def test_explorer_passes_max_wait_through():
    from repro.trigger import TriggerModule

    module = TriggerModule(factory=lambda seed: None, max_wait=123)
    assert module.max_wait == 123
