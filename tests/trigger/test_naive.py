"""The naive sleep-injection baseline (paper Section 5.1)."""

from repro.detect import ReportSet, Verdict, detect_races
from repro.runtime import Cluster, sleep
from repro.trace import FullScope, Tracer
from repro.trigger import NaiveSleepTrigger


def build_simple_race(cluster):
    """A race the naive approach CAN trigger: wide window, two threads."""
    node = cluster.add_node("n")
    var = node.shared_var("flag", None)

    def early():
        var.set("early")

    def late():
        sleep(10)
        value = var.get()
        if value is None:
            node.log.fatal("flag missing")

    node.spawn(early, name="e")
    node.spawn(late, name="l")


def _report_for(build):
    cluster = Cluster(seed=0)
    tracer = Tracer(scope=FullScope()).bind(cluster)
    build(cluster)
    result = cluster.run()
    assert not result.harmful
    detection = detect_races(tracer.trace)
    reports = ReportSet.from_detection(detection)
    assert reports.reports
    return reports.reports[0]


def _factory(build):
    def make(seed):
        cluster = Cluster(seed=seed, max_steps=20_000)
        build(cluster)
        return cluster

    return make


def test_naive_triggers_wide_window_race():
    report = _report_for(build_simple_race)
    naive = NaiveSleepTrigger(_factory(build_simple_race), delays=(5, 30, 100))
    outcome = naive.validate(report)
    assert outcome.verdict is Verdict.HARMFUL


def build_narrow_window_race(cluster):
    """A race the naive approach struggles with: the harmful order needs
    the remove to land in a handler's tiny check-act window, reachable
    only through a causally-downstream handler (no local sleep helps)."""
    node = cluster.add_node("n")
    jmap = node.shared_dict("jmap")
    q = node.event_queue("q", consumers=1)

    def check_act(event):
        if jmap.contains("k"):
            value = jmap.get("k")
            if value is None:
                node.log.fatal("entry vanished mid-handler")

    q.register("check", check_act)

    def main():
        jmap.put("k", 1)
        q.post("check")
        jmap.remove("k")
        q.post("check")

    node.spawn(main, name="main")


def test_naive_is_weaker_than_controller_somewhere():
    """Across the suite the controller confirms races naive cannot —
    the paper's §7.2 comparison (naive failed on 23 of 35)."""
    from repro.systems import workload_by_id
    from repro.trace import selective_scope_for
    from repro.trigger import PlacementAnalyzer, TriggerModule

    workload = workload_by_id("MR-3274")
    cluster = workload.cluster(None)
    tracer = Tracer(
        scope=selective_scope_for(workload.modules())
    ).bind(cluster)
    cluster.run()
    detection = detect_races(tracer.trace)
    reports = ReportSet.from_detection(detection)
    target = [
        r
        for r in reports
        if any(a.is_write for a in r.representative.accesses())
        and "tasks" in r.representative.variable
        and any(
            a.site and "on_kill_job" in a.site.func
            for a in r.representative.accesses()
        )
    ]
    assert target, "expected the get/remove report"
    report = target[0]

    naive = NaiveSleepTrigger(workload.factory(), delays=(5, 20, 80))
    naive_outcome = naive.validate(report)
    # The naive approach cannot confirm the hang: the get side lives in
    # an RPC handler and sleeping there just delays the reply.
    assert naive_outcome.verdict is not Verdict.HARMFUL

    placement = PlacementAnalyzer(tracer.trace, detection.graph)
    module = TriggerModule(workload.factory(), seeds=(0, 1, 2))
    outcome = module.validate_report(report, placement)
    assert outcome.verdict is Verdict.HARMFUL


def test_naive_outcome_describe():
    report = _report_for(build_simple_race)
    naive = NaiveSleepTrigger(_factory(build_simple_race), delays=(5,))
    outcome = naive.validate(report)
    text = outcome.describe()
    assert "naive sleep-injection" in text
