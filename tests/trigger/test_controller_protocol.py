"""Controller protocol edge cases and gate mechanics."""

import pytest

from repro.detect import Verdict
from repro.ids import Site
from repro.runtime import Cluster, OpKind, current_sim_thread, sleep
from repro.trigger import GateSpec, OrderController, TriggerInterceptor


def test_order_must_be_two_distinct_parties():
    with pytest.raises(ValueError):
        OrderController(("A", "A"))
    with pytest.raises(ValueError):
        OrderController(("A",))


def test_confirm_before_grant_is_ignored():
    controller = OrderController(("A", "B"))
    controller.confirm("A")  # never granted: no effect
    assert controller.confirmed == []
    assert not controller.enforced


def test_second_party_arriving_late_still_granted():
    cluster = Cluster(seed=0)
    node = cluster.add_node("n")
    controller = OrderController(("A", "B"))
    cluster.scheduler.on_idle(controller.on_idle)
    order = []

    def party_a():
        controller.request("A", current_sim_thread())
        order.append("A")
        controller.confirm("A")

    def party_b():
        sleep(30)  # arrives long after A requested
        controller.request("B", current_sim_thread())
        order.append("B")
        controller.confirm("B")

    node.spawn(party_a, name="a")
    node.spawn(party_b, name="b")
    result = cluster.run()
    assert result.completed
    assert order == ["A", "B"]
    assert controller.enforced


def test_enforced_requires_confirm_order():
    controller = OrderController(("B", "A"))
    controller.arrived["A"] = "t1"
    controller.arrived["B"] = "t2"
    controller._maybe_grant()
    assert "B" in controller.granted and "A" not in controller.granted
    controller.confirm("B")
    assert "A" in controller.granted
    controller.confirm("A")
    assert controller.enforced
    assert controller.co_occurred


def test_idle_release_marks_not_enforced():
    controller = OrderController(("A", "B"))
    controller.arrived["B"] = "t2"
    controller.on_idle()
    assert "B" in controller.released_by_idle
    assert not controller.enforced


class TestGateSpec:
    def _event(self, cluster, site_line):
        cluster_, node = cluster
        var = node.shared_var("x", 0)
        node.spawn(lambda: var.set(1), name="w")
        cluster_.run()
        return None

    def test_kind_filter(self):
        site = Site("tests/x.py", "f", 1)
        spec = GateSpec(site=site, kinds=frozenset({OpKind.MEM_WRITE}))
        from repro.ids import CallStack, Frame
        from repro.runtime.ops import OpEvent

        frame = Frame("tests/x.py", "f", 1)
        write = OpEvent(
            seq=1, kind=OpKind.MEM_WRITE, obj_id="x", node="n", tid=0,
            thread_name="t", segment=0, callstack=CallStack([frame]),
        )
        read = OpEvent(
            seq=2, kind=OpKind.MEM_READ, obj_id="x", node="n", tid=0,
            thread_name="t", segment=0, callstack=CallStack([frame]),
        )
        assert spec.matches(write)
        assert not spec.matches(read)

    def test_any_kind_gate(self):
        site = Site("tests/x.py", "f", 1)
        spec = GateSpec(site=site, kinds=None)
        from repro.ids import CallStack, Frame
        from repro.runtime.ops import OpEvent

        frame = Frame("tests/x.py", "f", 1)
        event = OpEvent(
            seq=1, kind=OpKind.RPC_CREATE, obj_id="r", node="n", tid=0,
            thread_name="t", segment=0, callstack=CallStack([frame]),
        )
        assert spec.matches(event)

    def test_describe(self):
        spec = GateSpec(
            site=Site("tests/x.py", "f", 1),
            kinds=frozenset({OpKind.MEM_READ}),
            instance=2,
            note="rule-4",
        )
        text = spec.describe()
        assert "instance=2" in text
        assert "rule-4" in text


def _shared_site_worker(var, tag, order):
    var.set(tag)
    order.append(tag)


def test_shared_site_gates_count_independently():
    """Two gates on one site: the counting fix — neither party's block
    may starve the other's instance counter."""
    from repro.trace import FullScope, Tracer

    # Probe run: learn the site of the write inside the shared worker.
    probe = Cluster(seed=0)
    tracer = Tracer(scope=FullScope()).bind(probe)
    pnode = probe.add_node("n")
    pvar = pnode.shared_var("x", 0)
    porder = []
    pnode.spawn(lambda: _shared_site_worker(pvar, 1, porder), name="p")
    probe.run()
    write = next(r for r in tracer.trace.mem_accesses() if r.is_write)
    site = write.site
    assert site is not None

    # Gated run: two threads hit the same site; enforce 2-before-1.
    cluster = Cluster(seed=0)
    node = cluster.add_node("n")
    var = node.shared_var("x", 0)
    controller = OrderController(("B", "A"))
    order = []
    node.spawn(lambda: _shared_site_worker(var, 1, order), name="t1")
    node.spawn(lambda: _shared_site_worker(var, 2, order), name="t2")
    gates = {
        "A": GateSpec(site=site, kinds=frozenset({OpKind.MEM_WRITE}), instance=0),
        "B": GateSpec(site=site, kinds=frozenset({OpKind.MEM_WRITE}), instance=1),
    }
    TriggerInterceptor(controller, gates).bind(cluster)
    result = cluster.run()
    assert result.completed
    assert controller.co_occurred, controller.log
    assert controller.enforced, controller.log
    # The gated-second write (instance 1) ran before instance 0.
    assert len(order) == 2


def test_idle_release_rescues_lone_party_end_to_end():
    """Safety valve, full scheduler loop: party A is held at its gate and
    party B never exists.  Without the idle hook this run would end in a
    hang verdict; with it the run completes, marked not-enforced."""
    cluster = Cluster(seed=0)
    node = cluster.add_node("n")
    controller = OrderController(("B", "A"))  # B first — but B never comes
    cluster.scheduler.on_idle(controller.on_idle)
    progressed = []

    def party_a():
        controller.request("A", current_sim_thread())
        progressed.append("A")
        controller.confirm("A")

    node.spawn(party_a, name="a")
    result = cluster.run()
    assert result.completed, result.failures.events
    assert progressed == ["A"]  # released, not deadlocked
    assert controller.released_by_idle == {"A"}
    assert not controller.enforced
    assert not controller.co_occurred


def test_idle_release_rescues_party_blocked_behind_held_one():
    """The circular case from the controller docstring: B's gate is
    downstream of A's gated operation, so holding A (waiting for B)
    stalls the whole run until the idle hook breaks the cycle."""
    cluster = Cluster(seed=0)
    node = cluster.add_node("n")
    controller = OrderController(("B", "A"))
    cluster.scheduler.on_idle(controller.on_idle)
    flag = node.shared_var("flag", 0)
    order = []

    def party_a():
        controller.request("A", current_sim_thread())
        order.append("A")
        flag.set(1)  # B waits for this — behind A's gate
        controller.confirm("A")

    def party_b():
        current_sim_thread().block_until(
            lambda: flag.get() == 1, "wait-flag"
        )
        controller.request("B", current_sim_thread())
        order.append("B")
        controller.confirm("B")

    node.spawn(party_a, name="a")
    node.spawn(party_b, name="b")
    result = cluster.run()
    assert result.completed, result.failures.events
    assert order == ["A", "B"]  # both ran — in the order we could NOT flip
    assert "A" in controller.released_by_idle
    assert controller.co_occurred  # B did reach its gate eventually
    assert not controller.enforced  # ... but the order was not enforced
