"""The dcatch command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "MR-3274" in out
    assert "ZooKeeper" in out


def test_table_command_table3(capsys):
    assert main(["table", "table3"]) == 0
    out = capsys.readouterr().out
    assert "Benchmark bugs" in out


def test_table_command_unknown(capsys):
    assert main(["table", "tableX"]) == 2
    out = capsys.readouterr().out
    assert "unknown table" in out


def test_run_command_no_trigger(capsys):
    assert main(["run", "ZK-1144", "--no-trigger"]) == 0
    out = capsys.readouterr().out
    assert "DCatch on ZK-1144" in out
    assert "DCatch reports" in out


def test_trace_command(tmp_path, capsys):
    out_dir = tmp_path / "trace"
    assert main(["trace", "ZK-1270", "--out", str(out_dir)]) == 0
    out = capsys.readouterr().out
    assert "saved" in out
    files = list(out_dir.glob("thread-*.jsonl"))
    assert files

    from repro.trace import Trace

    restored = Trace.load(str(out_dir))
    assert len(restored) > 0


def test_explain_command(capsys):
    assert main(
        ["explain", "ZK-1144", "--variable", "accepted_epoch", "--limit", "2"]
    ) == 0
    out = capsys.readouterr().out
    assert "CONCURRENT" in out or "=>" in out


def test_explain_unknown_variable(capsys):
    assert main(["explain", "ZK-1144", "--variable", "nope_xyz"]) == 1


def test_list_includes_extras(capsys):
    main(["list"])
    out = capsys.readouterr().out
    assert "MR-SPEC" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
