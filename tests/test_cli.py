"""The dcatch command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "MR-3274" in out
    assert "ZooKeeper" in out


def test_table_command_table3(capsys):
    assert main(["table", "table3"]) == 0
    out = capsys.readouterr().out
    assert "Benchmark bugs" in out


def test_table_command_unknown(capsys):
    assert main(["table", "tableX"]) == 2
    out = capsys.readouterr().out
    assert "unknown table" in out


def test_run_command_no_trigger(capsys):
    assert main(["run", "ZK-1144", "--no-trigger"]) == 0
    out = capsys.readouterr().out
    assert "DCatch on ZK-1144" in out
    assert "DCatch reports" in out


def test_trace_command(tmp_path, capsys):
    out_dir = tmp_path / "trace"
    assert main(["trace", "ZK-1270", "--out", str(out_dir)]) == 0
    out = capsys.readouterr().out
    assert "saved" in out
    files = list(out_dir.glob("thread-*.jsonl"))
    assert files

    from repro.trace import Trace

    restored = Trace.load(str(out_dir))
    assert len(restored) > 0


def test_explain_command(capsys):
    assert main(
        ["explain", "ZK-1144", "--variable", "accepted_epoch", "--limit", "2"]
    ) == 0
    out = capsys.readouterr().out
    assert "CONCURRENT" in out or "=>" in out


def test_explain_unknown_variable(capsys):
    assert main(["explain", "ZK-1144", "--variable", "nope_xyz"]) == 1


def test_list_includes_extras(capsys):
    main(["list"])
    out = capsys.readouterr().out
    assert "MR-SPEC" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_accepts_system_and_workload(capsys):
    assert main(["run", "minizk", "1270", "--no-trigger"]) == 0
    out = capsys.readouterr().out
    assert "DCatch on ZK-1270" in out


def test_run_unknown_bug_exits_2(capsys):
    assert main(["run", "NOPE-1"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error: unknown benchmark NOPE-1")
    assert "Traceback" not in err
    assert len(err.strip().splitlines()) == 1


def test_run_unknown_system_exits_2(capsys):
    assert main(["run", "minixx", "1270"]) == 2
    err = capsys.readouterr().err
    assert "unknown system minixx" in err
    assert len(err.strip().splitlines()) == 1


def test_profile_unknown_workload_exits_2(capsys):
    assert main(["profile", "minizk", "9999"]) == 2
    err = capsys.readouterr().err
    assert "unknown workload 9999" in err
    assert "ZK-1144" in err  # the known names are listed
    assert len(err.strip().splitlines()) == 1


def test_profile_command(tmp_path, capsys):
    import json

    out = tmp_path / "profile.json"
    chrome = tmp_path / "trace.json"
    assert main(
        [
            "profile",
            "minizk",
            "1270",
            "--no-trigger",
            "--out",
            str(out),
            "--chrome",
            str(chrome),
        ]
    ) == 0
    stdout = capsys.readouterr().out
    assert "pipeline.tracing" in stdout
    assert "share" in stdout

    profile = json.loads(out.read_text())
    assert profile["format"] == "repro-profile"
    span_names = {s["name"] for s in profile["profile"]["spans"]}
    assert "pipeline.analysis" in span_names
    assert "pipeline_runs_total" in profile["metrics"]

    trace = json.loads(chrome.read_text())
    assert any(e["ph"] == "X" for e in trace["traceEvents"])


def test_metrics_command_prometheus(capsys):
    assert main(["metrics", "ZK-1270", "--no-trigger"]) == 0
    out = capsys.readouterr().out
    assert "# TYPE pipeline_runs_total counter" in out
    assert "pipeline_runs_total 1" in out


def test_metrics_command_json(capsys):
    import json

    assert main(["metrics", "minizk", "1270", "--no-trigger", "--format", "json"]) == 0
    snapshot = json.loads(capsys.readouterr().out)
    assert snapshot["pipeline_runs_total"]["value"] == 1


def test_trace_stats_flag(capsys):
    assert main(["trace", "ZK-1270", "--stats", "--out", ""]) == 0
    out = capsys.readouterr().out
    assert "by category:" in out
    assert "bytes by category:" in out
    assert "hb ops:" in out


def test_analysis_flags_parse_and_default():
    parser = build_parser()
    args = parser.parse_args(["run", "ZK-1144"])
    assert args.workers == 1
    assert args.reach_backend == "bitset"
    args = parser.parse_args(
        ["run", "ZK-1144", "--workers", "2", "--reach-backend", "chain"]
    )
    assert args.workers == 2
    assert args.reach_backend == "chain"
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "ZK-1144", "--reach-backend", "sparse"])


def test_run_with_chain_backend_and_workers(capsys):
    assert main(
        [
            "run",
            "ZK-1270",
            "--no-trigger",
            "--workers",
            "2",
            "--reach-backend",
            "chain",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "DCatch on ZK-1270" in out
    assert "DCatch reports" in out


def test_trace_load_roundtrip(tmp_path, capsys):
    out_dir = tmp_path / "trace"
    assert main(["trace", "ZK-1144", "--out", str(out_dir)]) == 0
    capsys.readouterr()
    assert main(["trace", "--load", str(out_dir), "--stats"]) == 0
    out = capsys.readouterr().out
    assert "loaded" in out
    assert "by category:" in out


def test_trace_load_malformed_json_exits_2(tmp_path, capsys):
    bad = tmp_path / "broken"
    bad.mkdir()
    (bad / "thread-0.jsonl").write_text('{"seq": 1, "kind": "mem_read"\nnot json\n')
    assert main(["trace", "--load", str(bad)]) == 2
    err = capsys.readouterr().err
    assert "Traceback" not in err
    assert len(err.strip().splitlines()) == 1
    assert "line 1" in err  # points at the malformed line


def test_salvage_command_end_to_end(tmp_path, capsys):
    wal_root = tmp_path / "wal"
    assert main(
        ["run", "ZK-1270", "--no-trigger", "--trace-dir", str(wal_root)]
    ) == 0
    capsys.readouterr()
    wal_dir = wal_root / "ZK-1270" / "seed-0"
    report_path = tmp_path / "report.json"
    out_dir = tmp_path / "salvaged"
    assert main(
        [
            "salvage",
            str(wal_dir),
            "--report",
            str(report_path),
            "--out",
            str(out_dir),
            "--analyze",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "salvage of" in out
    assert "clean" in out
    assert "confidence: full" in out

    import json

    report = json.loads(report_path.read_text())
    assert report["format"] == "repro-salvage-report"
    assert report["damaged"] is False
    assert report["records_recovered"] > 0

    from repro.trace import Trace

    assert len(Trace.load(str(out_dir))) == report["records_recovered"]


def test_salvage_missing_directory_exits_2(tmp_path, capsys):
    assert main(["salvage", str(tmp_path / "nope")]) == 2
    err = capsys.readouterr().err
    assert "not a WAL directory" in err
    assert len(err.strip().splitlines()) == 1


def test_run_trigger_max_wait_flag_parses():
    parser = build_parser()
    args = parser.parse_args(["run", "ZK-1144", "--trigger-max-wait", "400"])
    assert args.trigger_max_wait == 400
    args = parser.parse_args(["run", "ZK-1144"])
    assert args.trigger_max_wait is None


def test_run_checkpoint_flags_parse():
    parser = build_parser()
    args = parser.parse_args(
        [
            "run",
            "ZK-1144",
            "--checkpoint-dir",
            "/tmp/ck",
            "--resume",
            "--max-stage-seconds",
            "1.5",
            "--memory-budget-mb",
            "64",
        ]
    )
    assert args.checkpoint_dir == "/tmp/ck"
    assert args.resume is True
    assert args.max_stage_seconds == 1.5
    assert args.memory_budget_mb == 64
    args = parser.parse_args(["run", "ZK-1144"])
    assert args.checkpoint_dir is None
    assert args.resume is False


def test_workers_auto_parses():
    parser = build_parser()
    args = parser.parse_args(["run", "ZK-1144", "--workers", "auto"])
    assert args.workers == "auto"
    args = parser.parse_args(["run", "ZK-1144", "--workers", "3"])
    assert args.workers == 3
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "ZK-1144", "--workers", "fast"])


def test_resume_missing_checkpoint_dir_exits_2(tmp_path, capsys):
    missing = str(tmp_path / "nope")
    code = main(
        ["run", "ZK-1144", "--checkpoint-dir", missing, "--resume"]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "not a checkpoint directory" in err
    assert len(err.strip().splitlines()) == 1


def test_resume_stale_schema_version_exits_2(tmp_path, capsys):
    import json as _json

    ckdir = tmp_path / "ck"
    assert main(
        ["run", "ZK-1144", "--no-trigger", "--checkpoint-dir", str(ckdir)]
    ) == 0
    capsys.readouterr()
    path = ckdir / "manifest.json"
    manifest = _json.loads(path.read_text())
    manifest["version"] = 99
    path.write_text(_json.dumps(manifest))
    code = main(
        ["run", "ZK-1144", "--checkpoint-dir", str(ckdir), "--resume"]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "stale checkpoint schema version 99" in err
    assert len(err.strip().splitlines()) == 1


def test_resume_config_fingerprint_mismatch_exits_2(tmp_path, capsys):
    ckdir = tmp_path / "ck"
    assert main(
        ["run", "ZK-1144", "--no-trigger", "--checkpoint-dir", str(ckdir)]
    ) == 0
    capsys.readouterr()
    # a different scope changes the analysis: the checkpoint must refuse
    code = main(
        [
            "run",
            "ZK-1144",
            "--no-trigger",
            "--full-scope",
            "--checkpoint-dir",
            str(ckdir),
            "--resume",
        ]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "fingerprint mismatch" in err
    assert len(err.strip().splitlines()) == 1


def test_run_resume_round_trip_via_cli(tmp_path, capsys):
    ckdir = str(tmp_path / "ck")
    assert main(
        ["run", "ZK-1144", "--no-trigger", "--checkpoint-dir", ckdir]
    ) == 0
    first = capsys.readouterr().out
    assert main(
        [
            "run",
            "ZK-1144",
            "--no-trigger",
            "--checkpoint-dir",
            ckdir,
            "--resume",
        ]
    ) == 0
    second = capsys.readouterr().out
    assert "resumed: skipped trace, hb, reach, detect" in second
    assert "DCatch reports" in first and "DCatch reports" in second
