"""The overload ladder: FleetBudget rung selection (with hysteresis)
and the honesty contract — a tenant that was ever sampled must publish
a report that says so."""

import json
import os

import pytest

from repro.analysis.governor import (
    FleetBudget,
    OVERLOAD_LADDER,
)
from repro.service.client import ServiceClient
from repro.service.server import DetectionServer
from repro.service.tenants import Tenant
from repro.trace.wal import list_stream_segments
from repro.workload import generate_workload

WINDOW = 256


@pytest.fixture(scope="module")
def wal_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("workload")
    generated = generate_workload("minizk", "small", seed=11, out_dir=str(out))
    return generated.wal_dir


class TestLadderRungs:
    """queue-pressure axis: pending segments against fleet capacity."""

    def _level(self, pending, current="full", queue=100, tenants=1):
        budget = FleetBudget(queue_segments=queue)
        return budget.overload_level(
            current, pending_segments=pending, active_tenants=tenants
        )

    def test_ladder_order(self):
        assert OVERLOAD_LADDER == ("full", "sampled", "paused")

    def test_idle_fleet_is_full(self):
        assert self._level(0) == "full"

    def test_soft_pressure_degrades_to_sampled(self):
        assert self._level(74) == "full"
        assert self._level(75) == "sampled"

    def test_hard_pressure_pauses(self):
        assert self._level(91) == "sampled"
        assert self._level(92) == "paused"

    def test_capacity_scales_with_active_tenants(self):
        # 4 tenants -> 400 aggregate capacity; 75 pending is now idle.
        assert self._level(75, tenants=4) == "full"
        assert self._level(300, tenants=4) == "sampled"

    def test_recovery_has_hysteresis(self):
        # engaged at 75; hovering just below must NOT flap back to full
        assert self._level(74, current="sampled") == "sampled"
        assert self._level(68, current="sampled") == "sampled"
        assert self._level(66, current="sampled") == "full"

    def test_paused_recovers_one_rung_at_a_time(self):
        assert self._level(85, current="paused") == "paused"  # hysteresis
        assert self._level(80, current="paused") == "sampled"
        assert self._level(10, current="paused") == "full"

    def test_degrading_skips_rungs_when_pressure_spikes(self):
        assert self._level(95, current="full") == "paused"


class TestAdmission:
    def test_tenant_budget_refusal_names_the_limit(self):
        budget = FleetBudget(max_tenants=2)
        assert budget.admit_tenant(1) is None
        refusal = budget.admit_tenant(2)
        assert refusal is not None and "2/2" in refusal

    def test_memory_share_splits_evenly_with_a_floor(self):
        budget = FleetBudget(memory_budget_mb=1024)
        assert budget.tenant_memory_share_mb(4) == 256
        assert budget.tenant_memory_share_mb(1000) == 16
        assert FleetBudget().tenant_memory_share_mb(4) is None


class TestSampledHonesty:
    def test_sampled_tenant_report_says_sampled(self, tmp_path, wal_dir):
        """Degrade a tenant mid-ingest; the published report must carry
        confidence "sampled" and the per-location drop counts — even
        though pressure recovered before the report was written."""
        srv = DetectionServer(
            str(tmp_path / "data"), window=WINDOW, http_port=None
        ).start()
        try:
            streams = sorted(list_stream_segments(wal_dir))
            with ServiceClient("127.0.0.1", srv.port, "hot") as client:
                client.hello(streams)
                srv.tenants["hot"].set_mode("sampled")
                client.ship_wal_dir(wal_dir)
                srv.tenants["hot"].set_mode("full")  # pressure recovered
                report = client.wait_report()
            assert report["confidence"] == "sampled"
            assert sum(report["sampled_dropped"].values()) > 0
            assert report["records"] < 456  # small preset's record count
            state = json.load(
                open(os.path.join(srv.tenants_dir, "hot", "state.json"))
            )
            assert state["ever_sampled"] is True
        finally:
            srv.stop()

    def test_full_tenant_report_is_not_sampled(self, tmp_path, wal_dir):
        srv = DetectionServer(
            str(tmp_path / "data"), window=WINDOW, http_port=None
        ).start()
        try:
            with ServiceClient("127.0.0.1", srv.port, "cold") as client:
                client.ship_wal_dir(wal_dir)
                report = client.wait_report()
            assert report["confidence"] == "full"
            assert report["sampled_dropped"] == {}
        finally:
            srv.stop()

    def test_ever_sampled_survives_recovery(self, tmp_path):
        root = str(tmp_path / "tenant")
        os.makedirs(root)
        tenant = Tenant("t", root, window=WINDOW)
        tenant.declare_streams([("n1", 1)])
        tenant.set_mode("sampled")
        tenant.save_state()
        recovered = Tenant.recover("t", root, window=WINDOW)
        assert recovered.ever_sampled is True
        assert recovered.sampler is not None  # re-engaged for the replay
