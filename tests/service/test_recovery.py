"""Crash recovery of the detection service, exercised with a real
``kill -9``: the server is SIGKILLed mid-ingest, restarted over the
same data directory, and must resume every tenant with zero lost
acknowledged segments and a report byte-identical to an offline pass
over the same WAL."""

import glob
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.detect.streaming import detect_races_streaming
from repro.service.client import ServiceClient
from repro.service.report import render_report, report_from_stream_result
from repro.service.server import load_service_file
from repro.workload import generate_workload

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC = os.path.join(REPO, "src")
WINDOW = "256"


def _env(stall=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("DCATCH_STALL", None)
    if stall:
        env["DCATCH_STALL"] = stall
    return env


def _cli(*args, stall=None):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        env=_env(stall),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def _wait_for(predicate, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return False


def _serve(data_dir, *extra, stall=None):
    proc = _cli(
        "serve",
        data_dir,
        "--window",
        WINDOW,
        "--no-http",
        *extra,
        stall=stall,
    )
    path = os.path.join(data_dir, "service.json")
    assert _wait_for(
        lambda: os.path.exists(path)
        and load_service_file(data_dir).get("pid") == proc.pid
    ), "server never wrote its service file"
    return proc


def _spooled(data_dir, tenant):
    return glob.glob(
        os.path.join(data_dir, "tenants", tenant, "spool", "**", "*.wal"),
        recursive=True,
    )


@pytest.fixture(scope="module")
def wal_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("workload")
    generated = generate_workload(
        "minizk", "small", seed=11, out_dir=str(out), segment_records=16
    )
    return generated.wal_dir


@pytest.fixture(scope="module")
def oracle(wal_dir):
    """Offline single-pass report over the same WAL: the byte oracle."""
    result = detect_races_streaming(wal_dir=wal_dir, window=int(WINDOW))
    return render_report(report_from_stream_result("alpha", result))


def test_sigkill_mid_ingest_resumes_with_zero_lost_segments(
    tmp_path, wal_dir, oracle
):
    data_dir = str(tmp_path / "data")
    os.makedirs(data_dir)
    # Throttle ingest (1-segment queue + a stalled pump) so the SIGKILL
    # reliably lands while segments are still arriving.  The ladder is
    # parked so backpressure alone does the pacing and the final report
    # stays full-confidence (byte-comparable to the offline oracle).
    server = _serve(
        data_dir,
        "--queue-segments", "1", "--overload-poll-s", "3600",
        stall="service_pump:0.3",
    )
    shipper = None
    try:
        shipper = _cli(
            "ship", wal_dir, "--tenant", "alpha", "--data-dir", data_dir,
            "--no-wait", "--retry-deadline", "3",
        )
        assert _wait_for(lambda: len(_spooled(data_dir, "alpha")) >= 3)
        spooled_before = len(_spooled(data_dir, "alpha"))
        os.kill(server.pid, signal.SIGKILL)  # no handler, no seal
        server.wait(timeout=30)
        shipper.communicate(timeout=60)  # dies retrying the dead port
    finally:
        for proc in (server, shipper):
            if proc is not None and proc.poll() is None:
                proc.kill()

    # Everything ACKed before the kill is still in the spool.
    assert len(_spooled(data_dir, "alpha")) >= spooled_before

    server = _serve(data_dir)
    try:
        doc = load_service_file(data_dir)
        assert doc["pid"] == server.pid  # genuinely a new process
        with ServiceClient(
            "127.0.0.1", int(doc["port"]), "alpha"
        ) as client:
            result = client.ship_wal_dir(wal_dir)
            report = client.wait_report()
        # the re-ship found every pre-kill segment already durable
        assert result.segments_duplicate >= spooled_before
        assert render_report(report) == oracle
        with open(
            os.path.join(data_dir, "tenants", "alpha", "report.json"), "rb"
        ) as fh:
            assert fh.read() == oracle
    finally:
        server.terminate()
        out, err = server.communicate(timeout=30)
    assert server.returncode == 0, err
    assert "sealing tenant checkpoints" in out


def test_sigterm_drains_gracefully_and_restart_serves_report(
    tmp_path, wal_dir, oracle
):
    data_dir = str(tmp_path / "data")
    os.makedirs(data_dir)
    server = _serve(data_dir)
    try:
        doc = load_service_file(data_dir)
        with ServiceClient(
            "127.0.0.1", int(doc["port"]), "alpha"
        ) as client:
            client.ship_wal_dir(wal_dir)
            report = client.wait_report()
        assert render_report(report) == oracle
    finally:
        server.terminate()
        out, err = server.communicate(timeout=30)
    assert server.returncode == 0, err

    # A finished tenant's report survives the restart untouched.
    server = _serve(data_dir)
    try:
        doc = load_service_file(data_dir)
        with ServiceClient(
            "127.0.0.1", int(doc["port"]), "alpha"
        ) as client:
            report = client.wait_report(timeout_s=10)
        assert render_report(report) == oracle
    finally:
        server.terminate()
        server.communicate(timeout=30)
