"""In-process DetectionServer behavior: shipping, idempotency,
admission control, structured errors, backpressure, and the circuit
breaker.  Uses real TCP on an ephemeral localhost port."""

import json
import os
import threading

import pytest

from repro.errors import ServiceError
from repro.analysis.governor import FleetBudget
from repro.detect.streaming import detect_races_streaming
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.report import render_report, report_from_stream_result
from repro.service.server import DetectionServer, load_service_file
from repro.trace.wal import list_stream_segments
from repro.workload import generate_workload

WINDOW = 256


@pytest.fixture(scope="module")
def wal_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("workload")
    generated = generate_workload("minizk", "small", seed=11, out_dir=str(out))
    return generated.wal_dir


@pytest.fixture()
def server(tmp_path):
    srv = DetectionServer(
        str(tmp_path / "data"), window=WINDOW, http_port=None
    ).start()
    yield srv
    srv.stop()


def _client(server, tenant, **kwargs):
    kwargs.setdefault("retry_deadline_s", 30.0)
    return ServiceClient("127.0.0.1", server.port, tenant, **kwargs)


def _offline_report(wal_dir, tenant):
    result = detect_races_streaming(wal_dir=wal_dir, window=WINDOW)
    return render_report(report_from_stream_result(tenant, result))


class TestShipAndReport:
    def test_report_matches_offline_stream_byte_for_byte(
        self, server, wal_dir
    ):
        with _client(server, "alpha") as client:
            result = client.ship_wal_dir(wal_dir)
            report = client.wait_report()
        assert result.segments_shipped > 0
        assert result.segments_duplicate == 0
        assert render_report(report) == _offline_report(wal_dir, "alpha")
        assert report["confidence"] == "full"

    def test_spool_is_the_wal_layout(self, server, wal_dir):
        """The tenant spool is itself a streamable WAL directory."""
        with _client(server, "alpha") as client:
            client.ship_wal_dir(wal_dir)
            client.wait_report()
        spool = os.path.join(server.tenants_dir, "alpha", "spool")
        assert list_stream_segments(spool).keys() == \
            list_stream_segments(wal_dir).keys()
        offline = detect_races_streaming(wal_dir=spool, window=WINDOW)
        assert render_report(
            report_from_stream_result("alpha", offline)
        ) == _offline_report(wal_dir, "alpha")

    def test_reshipping_is_idempotent(self, server, wal_dir):
        with _client(server, "alpha") as client:
            first = client.ship_wal_dir(wal_dir)
            report_a = client.wait_report()
        with _client(server, "alpha") as client:
            again = client.ship_wal_dir(wal_dir)
            report_b = client.wait_report()
        assert again.segments_duplicate == first.segments_shipped
        assert render_report(report_a) == render_report(report_b)

    def test_two_tenants_same_wal_same_candidates(self, server, wal_dir):
        def ship(tenant, out):
            with _client(server, tenant) as client:
                client.ship_wal_dir(wal_dir)
                out[tenant] = client.wait_report()

        reports = {}
        threads = [
            threading.Thread(target=ship, args=(t, reports))
            for t in ("alpha", "beta")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reports["alpha"]["candidates"] == reports["beta"]["candidates"]
        assert reports["alpha"]["tenant"] == "alpha"

    def test_service_file_is_discoverable(self, server):
        doc = load_service_file(server.data_dir)
        assert doc["port"] == server.port
        assert doc["pid"] == os.getpid()


class TestStructuredErrors:
    def test_admission_refusal_is_over_capacity(self, tmp_path, wal_dir):
        srv = DetectionServer(
            str(tmp_path / "data"),
            limits=FleetBudget(max_tenants=1),
            window=WINDOW,
            http_port=None,
        ).start()
        try:
            streams = sorted(list_stream_segments(wal_dir))
            with _client(srv, "alpha") as first:
                first.hello(streams)
                with _client(srv, "beta", retry_deadline_s=0.5) as second:
                    with pytest.raises(ServiceError) as err:
                        second.hello(streams)
            assert err.value.code == "over_capacity"
            assert err.value.retry_after_s is not None
        finally:
            srv.stop()

    def test_segment_before_hello_is_bad_request(self, server):
        with _client(server, "ghost") as client:
            with pytest.raises(ServiceError) as err:
                client.send_segment("n1", 1, 0, b"")
        assert err.value.code == "bad_request"

    def test_undeclared_stream_is_unknown_stream(self, server, wal_dir):
        segments = list_stream_segments(wal_dir)
        with open(next(iter(segments.values()))[0], "rb") as fh:
            data = fh.read()
        with _client(server, "alpha") as client:
            client.hello(sorted(segments))
            with pytest.raises(ServiceError) as err:
                client.send_segment("not-a-node", 999, 0, data)
        assert err.value.code == "unknown_stream"

    def test_gap_in_segment_indexes_is_out_of_order(self, server, wal_dir):
        segments = list_stream_segments(wal_dir)
        (node, tid), paths = sorted(segments.items())[0]
        with open(paths[0], "rb") as fh:
            data = fh.read()
        with _client(server, "alpha") as client:
            client.hello(sorted(segments))
            with pytest.raises(ServiceError) as err:
                client.send_segment(node, tid, 5, data)
        assert err.value.code == "out_of_order"

    def test_changing_the_stream_set_is_refused(self, server, wal_dir):
        streams = sorted(list_stream_segments(wal_dir))
        with _client(server, "alpha") as client:
            client.hello(streams)
        with _client(server, "alpha") as client:
            with pytest.raises(ServiceError) as err:
                client.hello(streams[:-1])
        assert err.value.code == "bad_request"

    def test_finalize_before_all_segments_is_incomplete(
        self, server, wal_dir
    ):
        segments = list_stream_segments(wal_dir)
        with _client(server, "alpha") as client:
            client.hello(sorted(segments))
            with pytest.raises(ServiceError) as err:
                client.finalize(
                    {f"{n}/{t}": len(p) for (n, t), p in segments.items()}
                )
        assert err.value.code == "incomplete"
        assert "re-ship" in str(err.value)


class TestBackpressure:
    @pytest.fixture(scope="class")
    def chunked_wal_dir(self, tmp_path_factory):
        """Several segments per stream — a stream with data buffered is
        no longer "hungry", so its next segment CAN be refused."""
        out = tmp_path_factory.mktemp("chunked")
        generated = generate_workload(
            "minizk", "small", seed=11, out_dir=str(out), segment_records=16
        )
        return generated.wal_dir

    def test_full_queue_defers_and_still_completes(
        self, tmp_path, chunked_wal_dir
    ):
        srv = DetectionServer(
            str(tmp_path / "data"),
            limits=FleetBudget(queue_segments=1),
            window=WINDOW,
            pump_delay_s=0.05,
            overload_poll_s=3600,  # backpressure only; no ladder
            http_port=None,
        ).start()
        try:
            with _client(srv, "alpha") as client:
                result = client.ship_wal_dir(chunked_wal_dir)
                report = client.wait_report()
            assert result.backpressure_waits > 0
            assert render_report(report) == _offline_report(
                chunked_wal_dir, "alpha"
            )
        finally:
            srv.stop()

    def test_more_streams_than_credits_does_not_deadlock(
        self, tmp_path, wal_dir
    ):
        """Regression: the small workload has 9 streams; with only 2
        queue credits the merge used to starve on streams the client
        was never allowed to ship, freezing the tenant forever.  The
        starvation-relief carve-out must keep it live — and with no
        records actually dropped the report stays byte-identical."""
        srv = DetectionServer(
            str(tmp_path / "data"),
            limits=FleetBudget(queue_segments=2),
            window=WINDOW,
            pump_delay_s=0.02,
            overload_poll_s=3600,
            http_port=None,
        ).start()
        try:
            with _client(srv, "alpha") as client:
                client.ship_wal_dir(wal_dir)
                report = client.wait_report(timeout_s=120)
            assert render_report(report) == _offline_report(wal_dir, "alpha")
        finally:
            srv.stop()

    def test_segment_ack_carries_credits(self, server, wal_dir):
        segments = list_stream_segments(wal_dir)
        (node, tid), paths = sorted(segments.items())[0]
        with open(paths[0], "rb") as fh:
            data = fh.read()
        with _client(server, "alpha") as client:
            hello = client.hello(sorted(segments))
            assert hello["credits"] > 0
            ack = client.send_segment(node, tid, 0, data)
            assert "credits" in ack and ack["mode"] == "full"


class TestCircuitBreaker:
    def _ship_garbage(self, client, node, tid, index):
        # CRC-valid framing is checked server-side; raw noise is "torn".
        return client.send_segment(node, tid, index, b"not a wal segment\n")

    def test_quarantine_after_bad_streak(self, server, wal_dir):
        segments = list_stream_segments(wal_dir)
        (node, tid), _paths = sorted(segments.items())[0]
        with _client(server, "mallory") as client:
            client.hello(sorted(segments))
            for _ in range(2):
                with pytest.raises(ServiceError) as err:
                    self._ship_garbage(client, node, tid, 0)
                assert err.value.code == "bad_segment"
            with pytest.raises(ServiceError) as err:
                self._ship_garbage(client, node, tid, 0)
            assert err.value.code == "quarantined"
            # every verb is now refused for this tenant
            with pytest.raises(ServiceError) as err:
                client.wait_report(timeout_s=1)
            assert err.value.code == "quarantined"
        qdir = os.path.join(server.tenants_dir, "mallory", "quarantine")
        evidence = sorted(os.listdir(qdir))
        assert len([e for e in evidence if e.endswith(".wal")]) == 3
        assert any(e.endswith(".reason") for e in evidence)
        state = json.load(
            open(os.path.join(server.tenants_dir, "mallory", "state.json"))
        )
        assert state["quarantined"] is True

    def test_good_segment_resets_the_streak(self, server, wal_dir):
        segments = list_stream_segments(wal_dir)
        (node, tid), paths = sorted(segments.items())[0]
        with open(paths[0], "rb") as fh:
            data = fh.read()
        with _client(server, "alpha") as client:
            client.hello(sorted(segments))
            for _ in range(2):
                with pytest.raises(ServiceError):
                    self._ship_garbage(client, node, tid, 0)
            client.send_segment(node, tid, 0, data)  # streak broken
            for _ in range(2):
                with pytest.raises(ServiceError) as err:
                    self._ship_garbage(client, node, tid, 1)
            assert err.value.code == "bad_segment"  # not quarantined

    def test_quarantine_survives_reconnect(self, server, wal_dir):
        streams = sorted(list_stream_segments(wal_dir))
        node, tid = streams[0]
        with _client(server, "mallory") as client:
            client.hello(streams)
            for _ in range(3):
                with pytest.raises(ServiceError):
                    self._ship_garbage(client, node, tid, 0)
        with _client(server, "mallory") as client:
            with pytest.raises(ServiceError) as err:
                client.hello(streams)
        assert err.value.code == "quarantined"


class TestStatus:
    def test_status_reports_fleet_shape(self, server, wal_dir):
        with _client(server, "alpha") as client:
            client.ship_wal_dir(wal_dir)
            client.wait_report()
            status = client.status()
        assert status["overload_level"] in ("full", "sampled", "paused")
        tenant = status["tenants"]["alpha"]
        assert tenant["done"] is True
        assert tenant["finalized"] is True
        assert tenant["quarantined"] is False


class TestRawProtocolEdges:
    def test_unknown_verb_is_bad_request(self, server):
        sock = protocol.connect("127.0.0.1", server.port)
        try:
            wfile = sock.makefile("wb")
            rfile = sock.makefile("rb")
            protocol.send_frame(wfile, {"verb": "frobnicate"})
            doc, _ = protocol.recv_frame(rfile)
            assert doc["ok"] is False and doc["error"] == "bad_request"
        finally:
            sock.close()

    def test_corrupt_frame_gets_protocol_error_reply(self, server):
        sock = protocol.connect("127.0.0.1", server.port)
        try:
            sock.sendall(b"F 00000004 00000000 oops\n")
            rfile = sock.makefile("rb")
            doc, _ = protocol.recv_frame(rfile)
            assert doc["ok"] is False and doc["error"] == "protocol"
        finally:
            sock.close()
