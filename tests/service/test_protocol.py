"""Wire framing for the detection service: self-verifying frames,
torn/corrupt rejection, and the structured-error contract."""

import io

import pytest

from repro.errors import ServiceError
from repro.service.protocol import (
    ProtocolError,
    RETRYABLE_ERRORS,
    error_frame,
    ok_frame,
    raise_for_error,
    recv_frame,
    send_frame,
    valid_tenant_id,
)


def _roundtrip(doc, body=b""):
    buf = io.BytesIO()
    send_frame(buf, doc, body)
    buf.seek(0)
    return buf


class TestFraming:
    def test_roundtrip_without_body(self):
        buf = _roundtrip({"verb": "status"})
        doc, body = recv_frame(buf)
        assert doc == {"verb": "status"}
        assert body == b""

    def test_roundtrip_with_body(self):
        payload = bytes(range(256)) * 17
        buf = _roundtrip({"verb": "segment", "index": 3}, payload)
        doc, body = recv_frame(buf)
        assert doc["index"] == 3
        assert doc["body"] == len(payload)
        assert body == payload

    def test_clean_eof_returns_none(self):
        assert recv_frame(io.BytesIO(b"")) is None

    def test_multiple_frames_on_one_stream(self):
        buf = io.BytesIO()
        send_frame(buf, {"n": 1})
        send_frame(buf, {"n": 2}, b"xyz")
        buf.seek(0)
        assert recv_frame(buf)[0]["n"] == 1
        doc, body = recv_frame(buf)
        assert doc["n"] == 2 and body == b"xyz"
        assert recv_frame(buf) is None

    def test_crc_mismatch_is_protocol_error(self):
        raw = bytearray(_roundtrip({"verb": "status"}).getvalue())
        raw[-3] ^= 0xFF  # flip a payload byte; header CRC now lies
        with pytest.raises(ProtocolError):
            recv_frame(io.BytesIO(bytes(raw)))

    def test_torn_header_is_protocol_error(self):
        raw = _roundtrip({"verb": "status"}).getvalue()
        with pytest.raises(ProtocolError):
            recv_frame(io.BytesIO(raw[:10]))

    def test_torn_body_is_protocol_error(self):
        raw = _roundtrip({"verb": "segment"}, b"a" * 100).getvalue()
        with pytest.raises(ProtocolError):
            recv_frame(io.BytesIO(raw[:-40]))

    def test_unrecognized_magic_is_protocol_error(self):
        raw = _roundtrip({"verb": "status"}).getvalue()
        with pytest.raises(ProtocolError):
            recv_frame(io.BytesIO(b"G " + raw[2:]))

    def test_oversized_json_refused_before_read(self):
        header = b"F %08x %08x " % (1 << 24, 0)
        with pytest.raises(ProtocolError):
            recv_frame(io.BytesIO(header))


class TestErrors:
    def test_ok_passes_through(self):
        doc = raise_for_error(ok_frame(credits=7))
        assert doc["credits"] == 7

    def test_error_becomes_service_error_with_code_and_retry(self):
        with pytest.raises(ServiceError) as err:
            raise_for_error(
                error_frame("over_queue", "queue full", retry_after_s=0.25)
            )
        assert err.value.code == "over_queue"
        assert err.value.retry_after_s == 0.25

    def test_terminal_codes_are_not_retryable(self):
        for code in ("quarantined", "bad_segment", "out_of_order",
                     "unknown_stream", "bad_request", "incomplete"):
            assert code not in RETRYABLE_ERRORS

    def test_protocol_error_is_a_service_error(self):
        assert issubclass(ProtocolError, ServiceError)
        assert ProtocolError("torn").code == "protocol"


class TestTenantIds:
    def test_boring_ids_pass(self):
        for tenant in ("alpha", "team-7", "a.b_c-d", "X" * 64):
            assert valid_tenant_id(tenant)

    def test_path_tricks_fail(self):
        for tenant in ("", "../up", "a/b", ".hidden", "-lead", "X" * 65):
            assert not valid_tenant_id(tenant)
