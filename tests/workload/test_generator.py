"""Workload generator: determinism, scaling, and detectability.

The generator's contract is byte-level: the same ``(system, preset,
seed)`` triple always produces identical WAL segments and an identical
ground-truth manifest, so generated corpora are cacheable and
benchmark runs are reproducible without shipping gigabytes of traces.
"""

import json
import os

import pytest

from repro.detect.races import detect_races
from repro.trace.salvage import salvage_trace
from repro.workload import (
    PRESETS,
    WorkloadSpec,
    generate_workload,
    load_ground_truth,
    resolve_spec,
)


def _wal_bytes(wal_dir):
    """{relative path: bytes} for every WAL segment under a directory."""
    out = {}
    for root, _dirs, files in os.walk(wal_dir):
        for name in files:
            path = os.path.join(root, name)
            out[os.path.relpath(path, wal_dir)] = open(path, "rb").read()
    return out


def test_same_seed_is_byte_identical(tmp_path):
    a = generate_workload("minizk", "small", 42, str(tmp_path / "a"))
    b = generate_workload("minizk", "small", 42, str(tmp_path / "b"))
    assert _wal_bytes(a.wal_dir) == _wal_bytes(b.wal_dir)
    assert open(a.ground_truth_path).read() == open(b.ground_truth_path).read()
    assert a.planted_races == b.planted_races


def test_different_seed_differs(tmp_path):
    a = generate_workload("minizk", "small", 1, str(tmp_path / "a"))
    b = generate_workload("minizk", "small", 2, str(tmp_path / "b"))
    assert _wal_bytes(a.wal_dir) != _wal_bytes(b.wal_dir)


def test_systems_share_shape_not_vocabulary(tmp_path):
    zk = generate_workload("minizk", "small", 5, str(tmp_path / "zk"))
    mr = generate_workload("minimr", "small", 5, str(tmp_path / "mr"))
    assert zk.records == mr.records
    assert len(zk.planted_races) == len(mr.planted_races)
    assert _wal_bytes(zk.wal_dir) != _wal_bytes(mr.wal_dir)


def test_ground_truth_roundtrip(tmp_path):
    generated = generate_workload("minihb", "small", 9, str(tmp_path / "g"))
    doc = load_ground_truth(generated.ground_truth_path)
    assert doc["records"] == generated.records
    assert doc["planted_races"] == generated.planted_races
    assert doc["spec"] == generated.spec.describe()

    broken = tmp_path / "broken.json"
    broken.write_text(json.dumps({"format": "something-else", "version": 1}))
    with pytest.raises(ValueError):
        load_ground_truth(str(broken))


def test_small_end_to_end_batch_detection(tmp_path):
    """A generated trace salvages cleanly, and batch detection finds
    exactly the planted races — nothing missed, nothing extra."""
    generated = generate_workload("minica", "small", 11, str(tmp_path / "g"))
    trace, report = salvage_trace(generated.wal_dir)
    assert not report.damaged
    assert len(trace) == generated.records

    detection = detect_races(trace)
    found = {
        frozenset((c.first.seq, c.second.seq)) for c in detection.candidates
    }
    planted = {
        frozenset((r["first_seq"], r["second_seq"]))
        for r in generated.planted_races
    }
    assert found == planted
    assert len(planted) > 0

    # The token chain keeps every chain write ordered: none may pair.
    chain_seqs = set()
    for pair in generated.ordered_pairs:
        chain_seqs.add(pair["first_seq"])
        chain_seqs.add(pair["second_seq"])
    for candidate in detection.candidates:
        assert candidate.first.seq not in chain_seqs


def test_presets_scale():
    small, medium, xl = PRESETS["small"], PRESETS["medium"], PRESETS["xl"]
    assert small.workers < medium.workers < xl.workers
    assert resolve_spec("small") is small
    with pytest.raises(ValueError):
        resolve_spec("gigantic")
    with pytest.raises(ValueError):
        generate_workload("not-a-system", "small", 0, "/tmp/never-used")


def test_spec_validation():
    with pytest.raises(ValueError):
        WorkloadSpec(
            preset="bad", workers=1, phases=1, local_ops=1, chain_len=5
        ).validate()  # chain longer than the worker pool


def test_record_count_estimate_matches():
    """The spec's own arithmetic predicts the generator's output, so
    preset record counts documented in docs/workloads.md stay honest."""
    spec = PRESETS["small"]
    per_phase = (
        2 * spec.workers  # start send + recv
        + 2 * spec.workers  # done send + recv
        + 2 * (spec.chain_len - 1)  # token sends + recvs
        + spec.workers * spec.local_ops  # private accesses
        + spec.chain_len  # chain writes
        + spec.racers  # planted accesses
    )
    assert spec.phases * per_phase == 456  # == generated.records for small
