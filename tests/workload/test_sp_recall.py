"""Ground-truth recall of the sync-preserving tier.

For every mini system the generator plants known races and writes them
to ``ground_truth.json``.  The SP tier must recall 100% of them: the
sync-preserving restriction only removes pairs that are ordered by the
observed synchronization, and a planted race never is.  Anything the
SP tier *does* remove is an HB-only candidate the trigger stage would
otherwise have spent re-executions on — the test records that count.

``small`` presets run everywhere; set ``REPRO_RECALL_MEDIUM=1`` to add
the ~180k-record ``medium`` presets (CI's sp-equivalence job does).
"""

import os

import pytest

from repro.detect import detect_races_sync_preserving
from repro.trace.salvage import salvage_trace
from repro.workload import SYSTEM_FLAVORS, generate_workload

SYSTEMS = sorted(SYSTEM_FLAVORS)

PRESETS = ["small"] + (
    ["medium"] if os.environ.get("REPRO_RECALL_MEDIUM") else []
)


def _planted(generated):
    return {
        frozenset((r["first_seq"], r["second_seq"]))
        for r in generated.planted_races
    }


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("preset", PRESETS)
def test_sp_recalls_all_planted_races(system, preset, tmp_path):
    generated = generate_workload(system, preset, 11, str(tmp_path))
    trace, report = salvage_trace(generated.wal_dir)
    assert report.records_recovered == generated.records

    # medium's ~180k records need ~700 MB of bit vectors — more than
    # the 512 MB default budget, less than the CI runner's memory.
    budget = 2 * 1024**3 if preset == "medium" else None
    kwargs = {"memory_budget": budget} if budget else {}
    detection = detect_races_sync_preserving(trace, **kwargs)
    planted = _planted(generated)
    sound = {frozenset(p) for p in detection.sp_pairs}
    missed = planted - sound
    assert not missed, f"{system}/{preset}: SP dropped planted races {missed}"

    # The eliminated HB-only candidates are the tier's payoff: they can
    # only ever be sync-ordered pairs, never planted ones.
    hb_only = len(detection.candidates) - len(detection.sp_pairs)
    assert hb_only >= 0
    all_pairs = {
        frozenset((c.first.seq, c.second.seq)) for c in detection.candidates
    }
    assert not (planted & (all_pairs - sound))
