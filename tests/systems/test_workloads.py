"""The seven benchmark workloads: correctness of monitored runs and
presence of the seeded racing accesses."""

import pytest

from repro.detect import detect_races
from repro.systems import WORKLOAD_CLASSES, all_workloads, workload_by_id
from repro.trace import FullScope, Tracer


@pytest.fixture(scope="module")
def traced_runs():
    """One traced monitored run per workload (full scope, churn off for
    speed — the races live in the communication paths)."""
    runs = {}
    for workload in all_workloads():
        cluster = workload.cluster(None, churn=False)
        tracer = Tracer(scope=FullScope()).bind(cluster)
        result = cluster.run()
        runs[workload.info.bug_id] = (workload, result, tracer.trace)
    return runs


def test_registry_has_seven_benchmarks():
    assert len(WORKLOAD_CLASSES) == 7
    ids = [cls.info.bug_id for cls in WORKLOAD_CLASSES]
    assert ids == sorted(ids)  # Table 3 order
    assert len(set(ids)) == 7


def test_workload_by_id_roundtrip():
    for cls in WORKLOAD_CLASSES:
        assert type(workload_by_id(cls.info.bug_id)) is cls
    with pytest.raises(KeyError):
        workload_by_id("XX-0000")


def test_monitored_runs_are_correct(traced_runs):
    """DCatch monitors *correct* executions (paper Section 7.1)."""
    for bug_id, (workload, result, trace) in traced_runs.items():
        assert result.completed, f"{bug_id} did not complete"
        assert not result.harmful, (
            f"{bug_id} monitored run failed: {[str(f) for f in result.failures]}"
        )


def test_monitored_runs_correct_across_seeds():
    for workload in all_workloads():
        for seed in (1, 2, 3):
            result = workload.cluster(seed, churn=False).run()
            assert not result.harmful, (
                f"{workload.info.bug_id} seed {seed}: "
                f"{[str(f) for f in result.failures]}"
            )


EXPECTED_RACE_VARIABLE = {
    "CA-1011": "ca1.tokens",
    "HB-4539": "master.regions_in_transition",
    "HB-4729": "master.unassigned_cache",
    "MR-3274": "am.tasks",
    "MR-4637": "am.jobs",
    "ZK-1144": "zk2.accepted_epoch",
    "ZK-1270": "zk1.votes",
}


def test_root_cause_pair_is_detected(traced_runs):
    """The racing variable of each Table 3 bug appears as a candidate."""
    for bug_id, (workload, result, trace) in traced_runs.items():
        detection = detect_races(trace)
        variables = {c.variable for c in detection.candidates}
        expected = EXPECTED_RACE_VARIABLE[bug_id]
        assert expected in variables, (
            f"{bug_id}: no candidate on {expected}; got {sorted(variables)}"
        )


def test_loc_is_meaningful():
    for workload in all_workloads():
        assert workload.lines_of_code() > 50


def test_factory_builds_fresh_clusters():
    workload = workload_by_id("ZK-1144")
    factory = workload.factory()
    c1, c2 = factory(0), factory(0)
    assert c1 is not c2
    r1, r2 = c1.run(), c2.run()
    assert r1.steps == r2.steps  # determinism across fresh builds


def test_churn_adds_trace_bulk_not_candidates():
    workload = workload_by_id("CA-1011")
    with_churn = workload.cluster(None, churn=True)
    t1 = Tracer(scope=FullScope()).bind(with_churn)
    with_churn.run()
    without = workload.cluster(None, churn=False)
    t2 = Tracer(scope=FullScope()).bind(without)
    without.run()
    assert len(t1.trace) > 5 * len(t2.trace)
    churn_candidates = [
        c
        for c in detect_races(t1.trace).candidates
        if "housekeeping" in c.variable
    ]
    assert not churn_candidates
