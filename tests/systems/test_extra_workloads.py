"""Beyond-benchmark workloads (paper §7.2's extra findings)."""

import pytest

from repro.detect import Verdict
from repro.pipeline import DCatch
from repro.systems import extra_workloads
from repro.systems.extra import MR4637MTWorkload


def test_extra_registry():
    extras = extra_workloads()
    assert extras
    benchmark_ids = {w.info.bug_id for w in extras}
    assert "MR-4637-MT" in benchmark_ids


def test_mt_monitored_runs_correct():
    workload = MR4637MTWorkload()
    for seed in range(4):
        result = workload.cluster(seed, churn=False).run()
        assert not result.harmful, f"seed {seed}"


@pytest.mark.slow
def test_mt_lost_update_confirmed_harmful():
    """The multi-threaded AM loses a done-count increment: a harmful
    DCbug beyond the seven benchmarks, like the paper's extra findings."""
    result = DCatch(MR4637MTWorkload()).run()
    harmful = [o for o in result.outcomes if o.verdict is Verdict.HARMFUL]
    assert harmful
    assert any(
        "done_count" in o.report.representative.variable for o in harmful
    )
