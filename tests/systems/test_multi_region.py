"""Scale test: many regions through the Figure 3 open path + balancer."""

from repro.detect import detect_races
from repro.runtime import Cluster, sleep
from repro.systems.minihb.balancer import Balancer
from repro.systems.minihb.master import HMaster
from repro.systems.minihb.regionserver import HRegionServer
from repro.trace import FullScope, Tracer


def _open_many(cluster, n_regions, servers):
    master = HMaster(cluster)
    hrs = {name: HRegionServer(cluster, name, open_ticks=2) for name in servers}
    client = cluster.add_node("client")

    def client_main():
        for i in range(n_regions):
            server = servers[i % len(servers)]
            client.rpc("master").split_table(f"region-{i}", server)
            sleep(2)
        # Wait until the master saw every region come online.
        while master.online_regions.size() < n_regions:
            sleep(5)

    client.spawn(client_main, name="client-main")
    return master, hrs


def test_six_regions_open_through_full_chain():
    cluster = Cluster(seed=0, max_steps=60_000)
    cluster.zookeeper()
    master, hrs = _open_many(cluster, 6, ["hrs1", "hrs2"])
    result = cluster.run()
    assert result.completed and not result.harmful
    assert master.online_regions.size() == 0 or True  # traced reads done
    assert len(master.online_regions.peek()) == 6
    per_server = {
        name: len(server.online_regions.peek()) for name, server in hrs.items()
    }
    assert sum(per_server.values()) == 6


def test_figure3_ordering_holds_for_every_region():
    """All W⇒R chains stay ordered at scale: no false positives on the
    regions_in_transition put/get pairs."""
    cluster = Cluster(seed=1, max_steps=60_000)
    cluster.zookeeper()
    tracer = Tracer(scope=FullScope()).bind(cluster)
    _open_many(cluster, 4, ["hrs1"])
    result = cluster.run()
    assert not result.harmful
    detection = detect_races(tracer.trace)
    # The Figure 3 guarantee is per region: the split path's put of
    # region-i is ordered before the watcher's get of region-i.  (The
    # synthetic #struct location still races *across* regions — real
    # concurrency, not a precision loss.)
    fig3_fps = [
        c
        for c in detection.candidates
        if "regions_in_transition" in c.variable
        and c.location[1].startswith("region-")
        and any(a.site and "split_table" in a.site.func for a in c.accesses())
        and any(
            a.site and "on_region_state_change" in a.site.func
            for a in c.accesses()
        )
    ]
    assert not fig3_fps, f"chain precision lost at scale: {fig3_fps}"


def test_balancer_after_skewed_splits():
    cluster = Cluster(seed=2, max_steps=80_000)
    cluster.zookeeper()
    master = HMaster(cluster)
    hrs1 = HRegionServer(cluster, "hrs1", open_ticks=1)
    hrs2 = HRegionServer(cluster, "hrs2", open_ticks=1)
    client = cluster.add_node("client")

    def client_main():
        for i in range(4):
            client.rpc("master").split_table(f"region-{i}", "hrs1")
            sleep(2)
        while master.online_regions.size() < 4:
            sleep(5)
        Balancer(master, ["hrs1", "hrs2"], interval=4).start()

    client.spawn(client_main, name="client-main")
    result = cluster.run()
    assert result.completed and not result.harmful
    counts = {
        "hrs1": len(hrs1.online_regions.peek()),
        "hrs2": len(hrs2.online_regions.peek()),
    }
    assert abs(counts["hrs1"] - counts["hrs2"]) <= 1, counts
