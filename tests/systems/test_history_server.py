"""The JobHistory server."""

from repro.runtime import Cluster, sleep
from repro.systems.minimr.history_server import HistoryReporter, HistoryServer


def test_timeline_records_in_order():
    cluster = Cluster(seed=0)
    jhs = HistoryServer(cluster)
    am = cluster.add_node("am")
    reporter = HistoryReporter(am)

    def lifecycle():
        reporter.report("job-9", "SUBMITTED")
        reporter.report("job-9", "LAUNCHED", "2 tasks")
        sleep(5)
        reporter.report("job-9", "FINISHED")

    am.spawn(lifecycle, name="lifecycle")
    result = cluster.run()
    assert result.completed and not result.harmful
    timeline = jhs.timelines.peek("job-9")
    assert [e["kind"] for e in timeline] == ["SUBMITTED", "LAUNCHED", "FINISHED"]
    assert [e["n"] for e in timeline] == [0, 1, 2]


def test_summary_and_queries():
    cluster = Cluster(seed=0)
    jhs = HistoryServer(cluster)
    am = cluster.add_node("am")
    client = cluster.add_node("client")
    reporter = HistoryReporter(am)
    out = {}

    def lifecycle():
        reporter.report("job-1", "SUBMITTED")
        reporter.report("job-1", "LAUNCHED")
        reporter.report("job-1", "KILLED", "user request")

    def query():
        sleep(40)
        out["summary"] = client.rpc("jhs").job_summary("job-1")
        out["missing"] = client.rpc("jhs").job_summary("nope")
        out["timeline"] = client.rpc("jhs").job_timeline("job-1")

    am.spawn(lifecycle, name="lifecycle")
    client.spawn(query, name="query")
    result = cluster.run()
    assert result.completed
    assert out["summary"] == {
        "events": 3,
        "launched": True,
        "finished": True,
        "outcome": "KILLED",
    }
    assert out["missing"] is None
    assert len(out["timeline"]) == 3


def test_concurrent_reporters_from_two_jobs():
    cluster = Cluster(seed=4)
    jhs = HistoryServer(cluster)
    am1 = cluster.add_node("am1")
    am2 = cluster.add_node("am2")

    def make(node, job):
        reporter = HistoryReporter(node)

        def lifecycle():
            reporter.report(job, "SUBMITTED")
            reporter.report(job, "FINISHED")

        return lifecycle

    am1.spawn(make(am1, "job-a"), name="a")
    am2.spawn(make(am2, "job-b"), name="b")
    result = cluster.run()
    assert result.completed and not result.harmful
    assert len(jhs.timelines.peek("job-a")) == 2
    assert len(jhs.timelines.peek("job-b")) == 2
