"""Seed sweep: monitored runs stay correct across many schedules.

The paper's methodology depends on DCbugs being *rare* under normal
scheduling (failures "rarely occur under these workloads") — otherwise
there would be no correct run to monitor.  This sweep checks that the
seeded bugs hide properly across a range of scheduler seeds.
"""

import pytest

from repro.systems import all_workloads, extra_workloads


@pytest.mark.slow
@pytest.mark.parametrize(
    "workload",
    all_workloads() + extra_workloads(),
    ids=lambda w: w.info.bug_id,
)
def test_monitored_runs_correct_across_ten_seeds(workload):
    for seed in range(10):
        result = workload.cluster(seed, churn=False).run()
        assert not result.harmful, (
            f"{workload.info.bug_id} seed {seed}: "
            f"{[str(f) for f in result.failures]}"
        )
