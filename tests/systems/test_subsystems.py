"""The healthy subsystems: shuffle, balancer, snapshots, anti-entropy."""

from repro.runtime import Cluster, sleep


class TestShuffle:
    def _run_pipeline(self, seed=0):
        from repro.systems.minimr.app_master import AppMaster
        from repro.systems.minimr.shuffle import (
            MapOutputStore,
            Reducer,
            run_map_task,
        )

        cluster = Cluster(seed=seed, max_steps=30_000)
        am = AppMaster(cluster)
        splits = {"m1": "a b a", "m2": "b c b"}
        locations = {}
        for task, text in splits.items():
            host = cluster.add_node(f"nm-{task}")

            class _Host:
                node = host

            store = MapOutputStore(_Host)
            locations[task] = host.name

            def mapper(t=task, s=store, x=text):
                run_map_task(s, t, x)

            host.spawn(mapper, name=f"mapper-{task}")
        reducer = Reducer(cluster, "red", map_locations=locations)
        reducer.start("job-x")
        result = cluster.run()
        assert result.completed and not result.harmful
        return am.results.peek("job-x")

    def test_wordcount_correct(self):
        counts = self._run_pipeline()
        assert counts == {"a": 2, "b": 3, "c": 1}

    def test_result_stable_across_seeds(self):
        assert self._run_pipeline(1) == self._run_pipeline(4)


class TestBalancer:
    def _build(self, regions, servers=("hrs1", "hrs2")):
        from repro.systems.minihb.balancer import Balancer
        from repro.systems.minihb.master import HMaster
        from repro.systems.minihb.regionserver import HRegionServer

        cluster = Cluster(seed=0, max_steps=40_000)
        cluster.zookeeper()
        master = HMaster(cluster)
        hrs = {name: HRegionServer(cluster, name) for name in servers}
        # Preload all regions onto the first server.
        first = hrs[servers[0]]
        for region in regions:
            first.online_regions._data.add(region)
        balancer = Balancer(master, list(servers), interval=5)
        balancer.start()
        return cluster, hrs, balancer

    def test_balances_skewed_load(self):
        regions = [f"r{i}" for i in range(4)]
        cluster, hrs, balancer = self._build(regions)
        result = cluster.run()
        assert result.completed and not result.harmful
        counts = {
            name: len(server.online_regions.peek())
            for name, server in hrs.items()
        }
        assert abs(counts["hrs1"] - counts["hrs2"]) <= 1, counts
        assert sum(counts.values()) == 4  # no region lost or duplicated
        assert balancer.moves.peek()  # it actually moved something

    def test_already_balanced_is_a_noop(self):
        cluster, hrs, balancer = self._build([])
        result = cluster.run()
        assert result.completed
        assert not balancer.moves.peek()


class TestTxnStore:
    def test_snapshot_plus_replay_equals_state(self):
        from repro.systems.minizk.snapshot import TxnStore

        cluster = Cluster(seed=0, max_steps=40_000)
        node = cluster.add_node("zk1")
        store = TxnStore(node, snapshot_every=5)
        out = {}

        def writer():
            for i in range(12):
                store.apply(f"k{i % 4}", i)
                if i % 5 == 4:
                    store.take_snapshot()
            out["recovered"] = store.recover()

        node.spawn(writer, name="writer")
        result = cluster.run()
        assert result.completed and not result.harmful
        assert out["recovered"] == {"k0": 8, "k1": 9, "k2": 10, "k3": 11}

    def test_concurrent_snapshot_thread_is_safe(self):
        from repro.systems.minizk.snapshot import TxnStore

        cluster = Cluster(seed=3, max_steps=40_000)
        node = cluster.add_node("zk1")
        store = TxnStore(node)
        store.start_snapshot_thread(rounds=4, interval=6)
        out = {}

        def writer():
            for i in range(20):
                store.apply(f"k{i % 3}", i)
                sleep(2)
            out["recovered"] = store.recover()

        node.spawn(writer, name="writer")
        result = cluster.run()
        assert result.completed and not result.harmful
        assert out["recovered"] == {"k0": 18, "k1": 19, "k2": 17}
        # The log was actually compacted at some point.
        assert store.snapshot_zxid.peek() > 0


class TestAntiEntropy:
    def test_diverged_stores_converge(self):
        from repro.systems.minica.antientropy import AntiEntropy, put_versioned

        cluster = Cluster(seed=0, max_steps=40_000)

        class Host:
            def __init__(self, name):
                self.node = cluster.add_node(name)
                self.store = self.node.shared_dict("store")

        a, b = Host("ca1"), Host("ca2")
        ae_a, ae_b = AntiEntropy(a), AntiEntropy(b)

        def seed_and_repair():
            put_versioned(a.store, "x", "ax", 3)
            put_versioned(a.store, "y", "ay", 1)
            ae_a.repair_with("ca2")

        def seed_b():
            put_versioned(b.store, "y", "by", 5)
            put_versioned(b.store, "z", "bz", 2)

        b.node.spawn(seed_b, name="seed-b")
        a.node.spawn(seed_and_repair, name="seed-a")
        result = cluster.run()
        assert result.completed and not result.harmful
        expected = {"x": ("ax", 3), "y": ("by", 5), "z": ("bz", 2)}
        assert a.store.peek("x") == expected["x"]
        assert b.store.peek("x") == expected["x"]
        assert a.store.peek("y") == expected["y"]
        assert b.store.peek("z") == expected["z"]
        # Our 'y' was stale: last-writer-wins kept the newer value.
        assert a.store.peek("y")[1] == 5
