"""The election system scales beyond the benchmark configuration."""

from repro.detect import ReportSet, detect_races
from repro.runtime import Cluster
from repro.systems.minizk.election import ElectionNode, VoterNode
from repro.trace import FullScope, Tracer


def _three_node_cluster(seed=0):
    cluster = Cluster(seed=seed, max_steps=30_000)
    ElectionNode(
        cluster, "zk1", peers=("zk2", "zk3"), quorum=3, round_timeout=3
    )
    VoterNode(cluster, "zk2", think_ticks=10)
    VoterNode(cluster, "zk3", think_ticks=18)
    return cluster


def test_three_node_election_converges():
    for seed in range(4):
        result = _three_node_cluster(seed).run()
        assert result.completed, f"seed {seed}"
        assert not result.harmful, f"seed {seed}"


def test_three_node_election_race_detected():
    cluster = _three_node_cluster()
    tracer = Tracer(scope=FullScope()).bind(cluster)
    cluster.run()
    detection = detect_races(tracer.trace)
    clear_races = [
        c
        for c in detection.candidates
        if "votes" in c.variable
        and any(
            a.site and "run_election" in a.site.func for a in c.accesses()
        )
        and any(a.site and "on_vote" in a.site.func for a in c.accesses())
    ]
    assert clear_races, "the round-bump clear race must appear at scale"
    # Two voters means both notification handlers race with the clear.
    reports = ReportSet.from_detection(detection)
    assert len(reports) >= 2
