"""Fault-tolerance interplay (paper §1.2, challenge 3).

"Their fault-tolerance design sometimes cures intermediate errors and
sometimes amplifies errors, making it difficult to judge what are truly
harmful bugs."  These integration tests exercise exactly that: the same
race outcome can be repaired by a later mechanism (anti-entropy) or
survived by recovery (txn-log replay + epoch handshake).
"""

from repro.runtime import Cluster, sleep


def test_anti_entropy_repairs_the_ca1011_damage():
    """Force the CA-1011 data-backup failure, then run a repair round:
    the missing backup copy converges — the error was intermediate."""
    from repro.systems.minica.antientropy import AntiEntropy
    from repro.systems.minica.bootstrap import BootstrapNode
    from repro.systems.minica.gossip import SeedNode

    cluster = Cluster(seed=0, max_steps=40_000)
    seed = SeedNode(cluster, "ca1", replication=2)
    boot = BootstrapNode(cluster, "ca2", seed="ca1", token=42)

    # Versioned stores for the repair protocol.
    class SeedHost:
        node = seed.node
        store = seed.node.shared_dict("versioned_store")

    class BootHost:
        node = boot.node
        store = boot.node.shared_dict("versioned_store")

    ae_seed = AntiEntropy(SeedHost)
    AntiEntropy(BootHost)

    failures = []

    def early_writer():
        # Write BEFORE the bootstrap gossip is applied: the replica
        # selection misses ca2 — the CA-1011 failure, forced.
        targets = seed.tokens.keys()
        SeedHost.store.put("k1", ("v1", 7))
        if len(targets) < 2:
            failures.append("backup missed")
        sleep(120)  # gossip lands meanwhile
        # Operator-style remediation: one anti-entropy round.
        ae_seed.repair_with("ca2")

    seed.node.spawn(early_writer, name="early-writer")
    result = cluster.run()
    assert result.completed
    assert failures == ["backup missed"], "the failure window did not hit"
    # The repair cured it: the backup now holds the entry.
    assert BootHost.store.peek("k1") == ("v1", 7)


def test_follower_recovery_then_epoch_handshake():
    """A follower rebuilds state from snapshot+log, then completes the
    quorum handshake — recovery composing with the startup protocol."""
    from repro.systems.minizk.quorum import FollowerNode, LeaderNode, NEW_EPOCH
    from repro.systems.minizk.snapshot import TxnStore

    cluster = Cluster(seed=0, max_steps=40_000)
    leader = LeaderNode(cluster, "zk1", quorum=1)
    follower = FollowerNode(cluster, "zk2", leader="zk1")
    store = TxnStore(follower.node)
    recovered = {}

    def preload_and_recover():
        for i in range(6):
            store.apply(f"cfg{i % 2}", i)
        store.take_snapshot()
        store.apply("cfg0", 99)
        recovered["state"] = store.recover()

    follower.node.spawn(preload_and_recover, name="recovery")
    result = cluster.run()
    assert result.completed and not result.harmful
    assert recovered["state"] == {"cfg0": 99, "cfg1": 5}
    # The handshake finished too: the follower adopted the new epoch.
    assert follower.accepted_epoch.peek() == NEW_EPOCH
