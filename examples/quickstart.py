"""Quickstart: detect and trigger the paper's Figure 1 bug (MR-3274).

Runs the full DCatch pipeline on the mini-MapReduce benchmark:

1. a *correct* monitored execution is traced;
2. the HB analysis predicts racing access pairs;
3. static pruning drops candidates that cannot cause failures;
4. the triggering module re-runs the system, enforcing each order of
   each surviving pair — and reproduces the hang of Figure 1: the
   container polls ``get_task`` forever once the kill's Unregister
   handler removed the task entry first.

Run with::

    python examples/quickstart.py
"""

from repro.detect import Verdict
from repro.pipeline import DCatch
from repro.systems import workload_by_id


def main() -> None:
    workload = workload_by_id("MR-3274")
    print(f"Running DCatch on {workload.info.bug_id}: {workload.info.workload}")
    print(f"  expected symptom if mistimed: {workload.info.symptom}\n")

    result = DCatch(workload).run()
    print(result.summary())
    print()

    for outcome in result.outcomes:
        print(outcome.describe())
        print()

    harmful = [o for o in result.outcomes if o.verdict is Verdict.HARMFUL]
    if harmful:
        print(
            "=> DCatch predicted the Figure 1 hang from a correct run and "
            "the trigger module reproduced it."
        )
    else:
        raise SystemExit("expected a harmful verdict for MR-3274")


if __name__ == "__main__":
    main()
