"""The ZooKeeper election race (ZK-1270): a vote lost to a round bump.

The electing node's round-timeout handler clears the vote table
concurrently with the peer's vote notification.  If the vote lands
first, the clear erases it, the peer never re-sends, and the election
never converges — the service stays unavailable.

This example runs detection *and* shows the two controlled re-executions
side by side: the safe order completes, the bad order hangs.

Run with::

    python examples/zookeeper_election_race.py
"""

from repro.detect import Verdict
from repro.pipeline import DCatch
from repro.runtime import FailureKind
from repro.systems import workload_by_id


def main() -> None:
    workload = workload_by_id("ZK-1270")
    result = DCatch(workload).run()
    print(result.summary())
    print()

    harmful = [o for o in result.outcomes if o.verdict is Verdict.HARMFUL]
    assert harmful, "expected the election race to be confirmed harmful"

    outcome = harmful[0]
    print(outcome.describe())
    print()

    hang_runs = [
        run
        for run in outcome.runs
        if FailureKind.HANG in run.result.failure_kinds()
    ]
    ok_runs = [run for run in outcome.runs if run.enforced and not run.failed]
    print(f"runs that hung (vote erased): {len(hang_runs)}")
    print(f"runs that completed (clear before vote): {len(ok_runs)}")
    print()
    print(
        "=> same system, same inputs: only the relative timing of the "
        "vote notification and the round bump decides liveness."
    )


if __name__ == "__main__":
    main()
