"""The HBase region-assignment race (HB-4539) and the Figure 3 chain.

Two things happen in this example:

* The **Figure 3 demonstration** — the split path's bookkeeping write is
  ordered before the ZooKeeper-watcher handler's read only through a
  chain of thread-fork, RPC, event-queue and coordination-service-push
  edges.  We show the pair is ordered under the full HB model and
  becomes (wrongly) concurrent when any rule family is ablated.

* The **HB-4539 detection** — the alter path's force-removal of the
  in-transition record really does race with the watcher handler; the
  trigger module enforces the bad order and the master aborts.

Run with::

    python examples/hbase_region_race.py
"""

from repro.detect import Verdict
from repro.hb import HBGraph, ablate_trace
from repro.pipeline import DCatch
from repro.systems import workload_by_id


def show_figure3_chain(result) -> None:
    trace = result.trace
    graph = result.detection.graph
    write = next(
        r
        for r in trace.mem_accesses()
        if r.is_write
        and str(r.obj_id).endswith("regions_in_transition")
        and r.site
        and "split_table" in r.site.func
    )
    read = next(
        r
        for r in trace.mem_accesses()
        if not r.is_write
        and str(r.obj_id).endswith("regions_in_transition")
        and r.site
        and "on_region_state_change" in r.site.func
    )
    print("Figure 3: W (split bookkeeping) vs R (watcher handler)")
    print(f"  full model: {'ordered' if graph.happens_before(write, read) else 'CONCURRENT'}")
    for family in ("rpc", "event", "push"):
        ablated = HBGraph(ablate_trace(trace, {family}))
        w = next(x for x in ablated.trace.records if x.seq == write.seq)
        r = next(x for x in ablated.trace.records if x.seq == read.seq)
        verdict = "ordered" if ablated.happens_before(w, r) else "CONCURRENT"
        print(f"  without {family:6s}: {verdict}")
    print()


def main() -> None:
    workload = workload_by_id("HB-4539")
    result = DCatch(workload).run()
    print(result.summary())
    print()

    show_figure3_chain(result)

    for outcome in result.outcomes:
        print(outcome.describe())
        print()

    assert any(o.verdict is Verdict.HARMFUL for o in result.outcomes), (
        "expected the HB-4539 master crash to be confirmed"
    )
    print("=> the alter-vs-watcher race crashes the master when mistimed.")


if __name__ == "__main__":
    main()
