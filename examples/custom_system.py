"""Bring your own system: run DCatch on code written against the runtime.

The detector is not tied to the four bundled mini systems.  This example
builds a small primary/backup replication service from scratch on the
``repro.runtime`` substrate, seeds it with a classic order-violation
(the backup applies an update before its epoch is initialized), and runs
the full pipeline on it.

Run with::

    python examples/custom_system.py
"""

import sys

from repro.detect import Verdict
from repro.pipeline import DCatch
from repro.runtime import Cluster, sleep
from repro.systems.base import BenchmarkInfo, Workload


class PrimaryBackupService:
    """A primary that replicates updates to one backup over sockets."""

    def __init__(self, cluster: Cluster):
        self.primary = cluster.add_node("primary")
        self.backup = cluster.add_node("backup")
        self.epoch = self.backup.shared_var("epoch", None)
        self.store = self.backup.shared_dict("store")
        self.backup.on_message("apply", self.on_apply)
        self.primary.on_message("backup-ready", self.on_backup_ready)
        self.backup.spawn(self.backup_startup, name="backup-startup")
        self.primary.spawn(self.primary_main, name="primary-main")

    def backup_startup(self) -> None:
        sleep(5)  # load checkpoint from disk
        self.epoch.set(1)
        self.backup.send("primary", "backup-ready", {})

    def primary_main(self) -> None:
        sleep(20)  # in correct runs the backup has started long before
        self.primary.send("backup", "apply", {"key": "a", "value": 1})

    def on_backup_ready(self, payload, src: str) -> None:
        self.primary.log.info("backup is up")

    def on_apply(self, payload, src: str) -> None:
        epoch = self.epoch.get()
        if epoch is None:
            # Update arrived before startup finished: data loss.
            self.backup.log.fatal("apply before epoch init: update dropped")
            return
        self.store.put(payload["key"], payload["value"])


class CustomWorkload(Workload):
    info = BenchmarkInfo(
        bug_id="CUSTOM-1",
        system="primary/backup demo",
        workload="startup + one replicated write",
        symptom="Dropped update",
        error_pattern="DE",
        root_cause="OV",
    )
    max_steps = 10_000
    trigger_max_steps = 10_000

    def build(self, cluster: Cluster) -> None:
        PrimaryBackupService(cluster)

    def modules(self):
        return [sys.modules[__name__]]


def main() -> None:
    result = DCatch(CustomWorkload()).run()
    print(result.summary())
    print()
    for outcome in result.outcomes:
        print(outcome.describe())
        print()
    assert any(o.verdict is Verdict.HARMFUL for o in result.outcomes), (
        "expected the startup order violation to be confirmed"
    )
    print("=> DCatch found the seeded order violation in a brand-new system.")


if __name__ == "__main__":
    main()
