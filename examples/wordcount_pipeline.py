"""A full MapReduce job — map, shuffle, reduce — with DCatch watching.

Unlike the benchmark workloads, this pipeline has no seeded bug: it is
the healthy data path (the part of mini-MapReduce that is supposed to
work).  The example:

1. runs a two-mapper word count end to end and prints the result;
2. runs DCatch over the same execution and shows that the only reports
   are benign polling races (the shuffle's fetch loop), not bugs —
   the detector stays quiet on healthy code.

Run with::

    python examples/wordcount_pipeline.py
"""

from repro.detect import Verdict
from repro.pipeline import DCatch
from repro.runtime import Cluster
from repro.systems.base import BenchmarkInfo, Workload
from repro.systems.minimr.shuffle import MapOutputStore, Reducer, run_map_task

SPLITS = {
    "map-1": "the quick brown fox jumps over the lazy dog",
    "map-2": "the dog barks and the fox runs over the hill",
}


class _FakeNM:
    """A minimal host for a MapOutputStore (a mapper-side node)."""

    def __init__(self, cluster: Cluster, name: str):
        self.node = cluster.add_node(name)


class WordCountPipeline(Workload):
    info = BenchmarkInfo(
        bug_id="MR-WORDCOUNT",
        system="Hadoop MapReduce",
        workload="full map/shuffle/reduce pipeline",
        symptom="none expected",
        error_pattern="-",
        root_cause="-",
    )
    max_steps = 30_000
    trigger_max_steps = 10_000
    source_packages = ("repro.systems.minimr",)

    def build(self, cluster: Cluster) -> None:
        from repro.systems.minimr.app_master import AppMaster

        am = AppMaster(cluster)
        self.am = am
        stores = {}
        for map_task, nm_name in (("map-1", "nm1"), ("map-2", "nm2")):
            nm = _FakeNM(cluster, nm_name)
            store = MapOutputStore(nm)
            stores[map_task] = (store, nm_name)

            def mapper(task=map_task, s=store):
                run_map_task(s, task, SPLITS[task])

            nm.node.spawn(mapper, name=f"mapper-{map_task}")

        reducer = Reducer(
            cluster,
            "reducer",
            map_locations={t: nm for t, (s, nm) in stores.items()},
        )
        reducer.start("wc-1")
        self.reducer = reducer


def main() -> None:
    workload = WordCountPipeline()
    cluster = workload.cluster(0)
    result = cluster.run()
    assert result.completed and not result.harmful

    counts = workload.am.results.peek("wc-1")
    assert counts, "reduce output missing"
    print("word counts:")
    for word in sorted(counts, key=lambda w: (-counts[w], w))[:8]:
        print(f"  {word:8s} {counts[word]}")
    expected_the = sum(split.split().count("the") for split in SPLITS.values())
    assert counts["the"] == expected_the

    print("\nDCatch over the same pipeline:")
    dcatch_result = DCatch(workload.__class__()).run()
    harmful = [
        o for o in dcatch_result.outcomes if o.verdict is Verdict.HARMFUL
    ]
    print(f"  reports: {dcatch_result.reports.summary() if dcatch_result.reports else 'none'}")
    assert not harmful, "healthy pipeline must not produce harmful verdicts"
    print("=> no harmful reports on the healthy data path.")


if __name__ == "__main__":
    main()
