"""Fault injection: DCbugs under crashes, restarts and a flaky network.

Three acts:

1. *Targeted chaos*: the mini-Cassandra CA-1011 bug is a timing race
   between the bootstrap gossip and the write path's replica selection.
   Delaying the gossip digest widens the race window until the backup
   copy is silently lost in plain (unsteered) runs.
2. *A crash/restart campaign*: a seeded ``FaultPlan`` crashes and
   restarts the bootstrapping node, cuts and heals a partition, and
   duplicates messages — while the full DCatch pipeline (trace, detect,
   prune, trigger) runs over the faulted execution.  The campaign
   collects partial results instead of raising, and checks that no
   dropped or duplicated message manufactured a happens-before edge.
3. *Prediction beats injection*: DCatch flags the same race from one
   clean run, no faults needed.

Run with::

    python examples/fault_injection.py
"""

from repro.detect import ReportSet, detect_races
from repro.pipeline import PipelineConfig
from repro.runtime import (
    Delivery,
    FailureKind,
    FaultAction,
    FaultCampaign,
    FaultKind,
    FaultPlan,
    NetworkPolicy,
)
from repro.systems import workload_by_id
from repro.trace import Tracer, selective_scope_for


class DelayGossip(NetworkPolicy):
    """A targeted chaos policy: only gossip digests are slowed down."""

    def __init__(self, delay: int) -> None:
        self.delay = delay

    def plan(self, src: str, dst: str, verb: str) -> Delivery:
        if verb == "gossip":
            return Delivery(deliver=True, delay=self.delay)
        return Delivery(deliver=True, delay=0)


def run_with_delay(workload, delay):
    cluster = workload.cluster(0, churn=False)
    if delay:
        cluster.set_network(DelayGossip(delay))
    result = cluster.run()
    backup_failures = [
        e
        for e in result.failures
        if e.kind is FailureKind.FATAL_LOG and "backup" in e.message
    ]
    return result, backup_failures


def crash_restart_plan(seed, nodes):
    """The campaign's per-run plan: crash + restart the bootstrapping
    node, one partition/heal window after the write, light duplication."""
    return FaultPlan(
        [
            FaultAction(25, FaultKind.CRASH, target="ca2"),
            FaultAction(55, FaultKind.RESTART, target="ca2"),
            FaultAction(140, FaultKind.PARTITION, group_a=("ca1",), group_b=("ca2",)),
            FaultAction(170, FaultKind.HEAL, group_a=("ca1",), group_b=("ca2",)),
        ],
        duplicate_probability=0.05,
    )


def main() -> None:
    workload = workload_by_id("CA-1011")

    print("1) reliable network:")
    result, failures = run_with_delay(workload, delay=0)
    print(f"   completed={result.completed}, backup failures={len(failures)}")
    assert not failures

    print("\n2) increasing gossip delay:")
    failing_delay = None
    for delay in (20, 60, 120, 200):
        result, failures = run_with_delay(workload, delay)
        status = "BACKUP LOST" if failures else "ok"
        print(f"   max_delay={delay:3d}: {status}")
        if failures and failing_delay is None:
            failing_delay = delay
    assert failing_delay is not None, "expected some delay to expose the bug"

    print("\n3) crash/restart campaign through the full pipeline:")
    campaign = FaultCampaign(
        workload,
        seeds=(0,),
        plan_factory=crash_restart_plan,
        config=PipelineConfig(trigger_seeds=(0,)),
    )
    outcome = campaign.run()
    print("   " + outcome.summary().replace("\n", "\n   "))
    assert not outcome.failed_runs, "campaign must degrade, not die"
    assert outcome.sound, "faults must not manufacture HB edges"
    run = outcome.completed_runs[0]
    restarted = run.result.monitored_result
    print(
        f"   faulted monitored run: completed={restarted.completed}, "
        f"{len(run.result.trace)} records traced under faults"
    )

    print("\n4) DCatch prediction from a correct run (no faults):")
    cluster = workload.cluster(0, churn=False)
    tracer = Tracer(scope=selective_scope_for(workload.modules()))
    tracer.bind(cluster)
    run = cluster.run()
    assert not run.harmful
    detection = detect_races(tracer.trace)
    reports = ReportSet.from_detection(detection)
    token_reports = [
        r for r in reports if "tokens" in r.representative.variable
    ]
    assert token_reports
    print(f"   predicted the gossip-vs-write race: {token_reports[0].representative}")
    print(
        "\n=> fault injection needed delay >= "
        f"{failing_delay} ticks to stumble on the bug; "
        "DCatch predicted it from one clean run."
    )


if __name__ == "__main__":
    main()
