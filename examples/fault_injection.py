"""Fault injection: DCbugs under a misbehaving network.

The mini-Cassandra CA-1011 bug is a timing race between the bootstrap
gossip and the write path's replica selection.  A flaky network makes
the timing *worse*: delaying the gossip digest widens the race window
until the failure fires in plain (unsteered) runs.

This example:

1. runs the workload on a reliable network — the write replicates fine;
2. runs it under increasing gossip delay — at some delay the backup
   copy is lost and the seed node logs the data-backup failure;
3. shows DCatch detecting the same race from a *correct* run, no faults
   needed — prediction beats injection.

Run with::

    python examples/fault_injection.py
"""

from repro.detect import ReportSet, detect_races
from repro.runtime import Delivery, FailureKind, NetworkPolicy
from repro.systems import workload_by_id
from repro.trace import Tracer, selective_scope_for


class DelayGossip(NetworkPolicy):
    """A targeted chaos policy: only gossip digests are slowed down."""

    def __init__(self, delay: int) -> None:
        self.delay = delay

    def plan(self, src: str, dst: str, verb: str) -> Delivery:
        if verb == "gossip":
            return Delivery(deliver=True, delay=self.delay)
        return Delivery(deliver=True, delay=0)


def run_with_delay(workload, delay):
    cluster = workload.cluster(0, churn=False)
    if delay:
        cluster.set_network(DelayGossip(delay))
    result = cluster.run()
    backup_failures = [
        e
        for e in result.failures
        if e.kind is FailureKind.ERROR_LOG and "backup" in e.message
    ]
    return result, backup_failures


def main() -> None:
    workload = workload_by_id("CA-1011")

    print("1) reliable network:")
    result, failures = run_with_delay(workload, delay=0)
    print(f"   completed={result.completed}, backup failures={len(failures)}")
    assert not failures

    print("\n2) increasing gossip delay:")
    failing_delay = None
    for delay in (20, 60, 120, 200):
        result, failures = run_with_delay(workload, delay)
        status = "BACKUP LOST" if failures else "ok"
        print(f"   max_delay={delay:3d}: {status}")
        if failures and failing_delay is None:
            failing_delay = delay
    assert failing_delay is not None, "expected some delay to expose the bug"

    print("\n3) DCatch prediction from a correct run (no faults):")
    cluster = workload.cluster(0, churn=False)
    tracer = Tracer(scope=selective_scope_for(workload.modules()))
    tracer.bind(cluster)
    run = cluster.run()
    assert not run.harmful
    detection = detect_races(tracer.trace)
    reports = ReportSet.from_detection(detection)
    token_reports = [
        r for r in reports if "tokens" in r.representative.variable
    ]
    assert token_reports
    print(f"   predicted the gossip-vs-write race: {token_reports[0].representative}")
    print(
        "\n=> fault injection needed delay >= "
        f"{failing_delay} ticks to stumble on the bug; "
        "DCatch predicted it from one clean run."
    )


if __name__ == "__main__":
    main()
