"""Crash-tolerant tracing: kill a node mid-run, salvage its trace.

The paper's tracer streams one trace file per thread of every process
(Section 3.1) precisely so a crashed process leaves its trace behind.
This example shows our durable path doing the same job:

1. *A durable monitored run*: the pipeline runs the mini-MapReduce
   MR-3274 workload with ``trace_dir`` set, so every record is appended
   to a per-node, per-thread write-ahead log as it happens — while a
   fault plan kills a node manager mid-run.  The dead node's WAL ends
   torn and unsealed.
2. *Salvage*: ``salvage_trace`` rebuilds a trace from the damaged WAL,
   quarantining torn records into a structured report instead of dying.
3. *Partial-confidence analysis*: the HB graph built from the salvaged
   trace completes, and the seeded race is still detected — downgraded
   to ``confidence: "partial"`` so downstream consumers know records
   were lost.

Run with::

    python examples/crash_salvage.py
"""

import os
import tempfile

from repro.detect import detect_races
from repro.pipeline import DCatch, PipelineConfig
from repro.runtime import FaultAction, FaultKind, FaultPlan
from repro.systems import workload_by_id
from repro.trace import salvage_trace


def main() -> int:
    workload = workload_by_id("MR-3274")
    trace_dir = tempfile.mkdtemp(prefix="dcatch-wal-")

    print("=== act 1: durable tracing under a mid-run crash ===")
    plan = FaultPlan([FaultAction(40, FaultKind.CRASH, target="nm2")])
    config = PipelineConfig(trigger=False, fault_plan=plan, trace_dir=trace_dir)
    result = DCatch(workload, config).run()
    print(f"pipeline stages failed: {result.stage_failures or 'none'}")
    print(f"in-memory detection: {len(result.detection.candidates)} "
          f"candidate(s), confidence={result.detection.confidence}")

    wal_dir = os.path.join(
        trace_dir, "MR-3274", f"seed-{result.monitored_result.seed}"
    )
    print(f"WAL written under {wal_dir}")
    for node in sorted(os.listdir(wal_dir)):
        streams = os.listdir(os.path.join(wal_dir, node))
        print(f"  {node}: {len(streams)} thread stream(s)")

    print()
    print("=== act 2: salvage the damaged WAL ===")
    trace, report = salvage_trace(wal_dir)
    print(report.render())

    print()
    print("=== act 3: analysis degrades instead of dying ===")
    detection = detect_races(trace)
    print(f"salvaged detection: {len(detection.candidates)} candidate(s), "
          f"confidence={detection.confidence}")
    for pair in sorted(
        tuple(sorted(str(s) for s in p)) for p in detection.static_pairs()
    ):
        print(f"  racing pair: {pair[0]}  <->  {pair[1]}")

    assert report.damaged, "the crashed node's WAL must show damage"
    assert detection.confidence == "partial"
    assert detection.candidates, "the seeded race must survive salvage"
    print()
    print("crash -> salvage -> partial-confidence detection: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
