"""Resumable analysis: kill a pipeline mid-stage, resume it bit-perfectly.

Long analyses die for boring reasons — OOM killers, preemptions,
Ctrl-C.  With ``checkpoint_dir`` set, every completed stage is sealed
under a CRC-checked manifest, detection checkpoints shard by shard, and
a later ``resume=True`` run skips everything that already finished.
This example shows the whole story:

1. *A checkpointed run* of the ZooKeeper ZK-1144 workload: each stage
   seals its output as it completes.
2. *A simulated crash*: a second checkpoint directory is built holding
   only the stages a mid-detection SIGKILL would have left behind
   (trace, HB graph, reachability, plus one detect shard in the
   incremental shard log).
3. *Resume*: the pipeline skips the sealed stages, merges the surviving
   shard, re-enumerates only the missing ones, and produces reports
   **byte-identical** to the uninterrupted run.
4. *Degradation, not death*: the same workload under an absurd memory
   budget completes by walking the degradation ladder instead of
   raising, with every rung on the record.

Run with::

    python examples/crash_resume.py
"""

import tempfile

from repro.analysis.checkpoint import CheckpointStore, config_fingerprint
from repro.detect.export import dump_reports
from repro.pipeline import DCatch, PipelineConfig
from repro.systems import workload_by_id

BUG = "ZK-1144"


def main() -> int:
    print("=== act 1: a fully checkpointed run ===")
    ckdir = tempfile.mkdtemp(prefix="dcatch-ck-")
    config = PipelineConfig(checkpoint_dir=ckdir)
    full = DCatch(workload_by_id(BUG), config).run()
    print(f"checkpoint sealed under {ckdir}")
    print(f"stage status: {full.stage_status}")
    oracle = dump_reports(full.reports)

    print()
    print("=== act 2: simulate a SIGKILL mid-detection ===")
    # Rebuild what a crashed run leaves on disk: trace/hb/reach sealed,
    # detect incomplete with one shard already in the incremental log.
    crashed_dir = tempfile.mkdtemp(prefix="dcatch-ck-crashed-")
    fingerprint = config_fingerprint(BUG, config)
    sealed = CheckpointStore(
        directory=ckdir, benchmark=BUG, config_fp=fingerprint, resume=True
    )
    crashed = CheckpointStore(
        directory=crashed_dir, benchmark=BUG, config_fp=fingerprint
    )
    for stage in ("trace", "hb", "reach"):
        crashed.seal_stage(stage, sealed.load_stage(stage))
    crashed.set_trace_fingerprint(sealed.manifest["trace_fingerprint"])
    shards = sealed.load_shards("detect")
    crashed.shard_log("detect").append(shards[0])
    crashed.seal()
    print(f"crashed checkpoint: 3 stages sealed, "
          f"1 of {len(shards)} detect shards survived")

    print()
    print("=== act 3: resume from the wreckage ===")
    resumed = DCatch(
        workload_by_id(BUG),
        PipelineConfig(checkpoint_dir=crashed_dir, resume=True),
    ).run()
    print(f"stages skipped: {resumed.stages_skipped}")
    shards_resumed = resumed.metrics["checkpoint_shards_resumed_total"]
    print(f"detect shards merged from the log: "
          f"{int(shards_resumed['value'])}")
    assert dump_reports(resumed.reports) == oracle
    print("resumed reports are byte-identical to the uninterrupted run")

    print()
    print("=== act 4: resource pressure degrades instead of dying ===")
    governed = DCatch(
        workload_by_id(BUG),
        PipelineConfig(trigger=False, detect_workers=2, memory_budget_mb=1),
    ).run()
    print(f"degradation ladder rungs engaged: {governed.degradation}")
    print(f"candidates found anyway: "
          f"{len(governed.detection.candidates)}")
    assert governed.oom is None
    assert governed.degradation, "the 1 MB budget must engage the ladder"
    assert governed.detection.candidates

    print()
    print("crash -> resume -> identical reports; pressure -> ladder: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
