"""The always-on detection service under fire: overload, then kill -9.

The service's promise is robustness, and the only honest way to demo
robustness is to attack it.  Three acts:

1. *Honest overload*: an under-provisioned server (4-segment ingest
   queue, an injected per-batch detection delay) takes a tenant's full
   workload.  The overload ladder engages (full -> sampled), ingest is
   paced by credit backpressure, and the published report admits
   ``confidence: sampled`` with per-location drop counts — degraded,
   never silently wrong.
2. *A real crash*: a comfortably provisioned server subprocess is
   SIGKILLed mid-ingest — no handler runs, nothing gets to seal.
3. *Recovery*: a restart over the same data directory recovers the
   tenant, the client re-ships the same WAL (already-spooled segments
   ACK as duplicates), and the final report is **byte-identical** to
   an offline single-pass over the same trace.

Run with::

    python examples/service_overload.py
"""

import glob
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

from repro.detect.streaming import detect_races_streaming
from repro.service.client import ServiceClient
from repro.service.report import render_report, report_from_stream_result
from repro.service.server import load_service_file
from repro.workload import generate_workload

WINDOW = 512


def serve(data_dir: str, *extra: str) -> subprocess.Popen:
    """Start ``dcatch serve`` and wait for its service.json."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", data_dir,
            "--window", str(WINDOW), "--no-http", *extra,
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        try:
            if load_service_file(data_dir).get("pid") == proc.pid:
                return proc
        except (OSError, ValueError, KeyError):
            pass
        time.sleep(0.05)
    proc.kill()
    raise RuntimeError("service never became ready")


def main() -> int:
    workdir = tempfile.mkdtemp(prefix="dcatch-service-demo-")
    generated = generate_workload(
        "minizk", "small", seed=7, out_dir=os.path.join(workdir, "gen"),
        segment_records=16,
    )
    wal_dir = generated.wal_dir

    print("=== act 1: honest overload ===")
    hot_dir = os.path.join(workdir, "hot")
    server = serve(
        hot_dir,
        "--queue-segments", "4",      # tiny ingest queue
        "--pump-delay-s", "0.2",      # detection deliberately slow
        "--overload-poll-s", "0.05",
    )
    try:
        doc = load_service_file(hot_dir)
        with ServiceClient(
            "127.0.0.1", int(doc["port"]), "hot", retry_deadline_s=120
        ) as client:
            result = client.ship_wal_dir(wal_dir)
            report = client.wait_report(timeout_s=300)
        dropped = sum(report["sampled_dropped"].values())
        print(
            f"shipped {result.segments_shipped} segments against "
            f"{result.backpressure_waits} queue refusals and "
            f"{result.paused_waits} overload pauses"
        )
        print(
            f"report: confidence={report['confidence']!r}, "
            f"{report['records']} records kept, {dropped} sampled away"
        )
        assert report["confidence"] == "sampled" and dropped > 0
    finally:
        server.terminate()
        server.wait(timeout=30)

    print()
    print("=== act 2: kill -9 mid-ingest ===")
    oracle = render_report(
        report_from_stream_result(
            "alpha", detect_races_streaming(wal_dir=wal_dir, window=WINDOW)
        )
    )
    cold_dir = os.path.join(workdir, "cold")
    # Pace ingest (small queue, tiny pump delay, ladder parked) so the
    # kill reliably lands mid-ship.
    server = serve(
        cold_dir,
        "--queue-segments", "1",
        "--pump-delay-s", "0.1",
        "--overload-poll-s", "3600",
    )
    doc = load_service_file(cold_dir)
    spool_glob = os.path.join(cold_dir, "tenants", "alpha", "spool", "**", "*.wal")

    def ship_first() -> None:
        try:
            with ServiceClient(
                "127.0.0.1", int(doc["port"]), "alpha", retry_deadline_s=5
            ) as client:
                client.ship_wal_dir(wal_dir)
        except Exception:
            pass  # expected: the server dies under it

    shipper = threading.Thread(target=ship_first)
    shipper.start()
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if len(glob.glob(spool_glob, recursive=True)) >= 3:
            break
        time.sleep(0.02)
    spooled = len(glob.glob(spool_glob, recursive=True))
    os.kill(server.pid, signal.SIGKILL)
    server.wait(timeout=30)
    shipper.join(timeout=30)
    print(f"SIGKILLed pid {server.pid} with {spooled} segments spooled")

    print()
    print("=== act 3: restart, re-ship, byte-identical report ===")
    server = serve(cold_dir, "--overload-poll-s", "3600")
    try:
        doc = load_service_file(cold_dir)
        with ServiceClient(
            "127.0.0.1", int(doc["port"]), "alpha", retry_deadline_s=120
        ) as client:
            result = client.ship_wal_dir(wal_dir)
            report = client.wait_report(timeout_s=300)
        print(
            f"re-ship: {result.segments_duplicate} duplicates ACKed "
            f"(>= {spooled} spooled before the kill: zero lost)"
        )
        identical = render_report(report) == oracle
        print(
            f"report: {report['candidate_count']} candidates, "
            f"confidence={report['confidence']!r}, "
            f"byte-identical to offline pass: {identical}"
        )
        assert result.segments_duplicate >= spooled
        assert identical
    finally:
        server.terminate()
        server.wait(timeout=30)
    print()
    print("robustness demo complete")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
