"""Table 6: DCatch performance (base vs tracing vs analysis vs pruning).

Paper shape: tracing slows the run by a small constant factor; trace
analysis scales with trace size; static pruning is the most expensive
offline phase.
"""

from conftest import run_once

from repro.bench import CACHE, all_bug_ids, table6_performance


def test_table6(benchmark, save_table):
    table = run_once(benchmark, table6_performance)
    save_table(table)

    assert len(table.rows) == 7
    for row in table.rows:
        bug_id, base_s, tracing_s, analysis_s, pruning_s, size = row
        assert base_s > 0 and tracing_s > 0
        assert pruning_s > 0
        assert size.endswith("KB")

    # Pruning dominates the offline phases in aggregate (paper: "the
    # most time consuming phase in DCatch").
    total_pruning = sum(row[4] for row in table.rows)
    total_analysis = sum(row[3] for row in table.rows)
    assert total_pruning > total_analysis


def test_trace_sizes_ordering(benchmark, save_table):
    """Relative trace sizes follow the paper: MR > HB-4729 > ZK."""

    def measure():
        return {
            bug_id: CACHE.pipeline(bug_id, trigger=False).trace.size_bytes()
            for bug_id in all_bug_ids()
        }

    sizes = run_once(benchmark, measure)
    assert sizes["MR-3274"] > sizes["ZK-1144"]
    assert sizes["MR-4637"] > sizes["ZK-1270"]
    assert sizes["HB-4729"] > sizes["ZK-1144"]
