"""Beyond-benchmark findings (paper Section 7.2).

"DCatch also found a few harmful DCbugs ... that go beyond the 7
benchmarks.  We were unaware of these bugs" — the reproduction's
equivalents live in ``repro.systems.extra`` and this bench confirms the
detector finds and triggers them end to end.
"""

from conftest import run_once

from repro.bench import TableResult
from repro.detect import Verdict
from repro.pipeline import DCatch
from repro.systems import extra_workloads


def beyond_benchmarks() -> TableResult:
    rows = []
    for workload in extra_workloads():
        result = DCatch(workload).run()
        harmful = [
            o for o in result.outcomes if o.verdict is Verdict.HARMFUL
        ]
        rows.append(
            [
                workload.info.bug_id,
                workload.info.workload,
                workload.info.symptom,
                "yes" if not result.monitored_result.harmful else "NO",
                len(harmful),
                harmful[0].report.representative.variable if harmful else "-",
            ]
        )
    return TableResult(
        table_id="Beyond",
        title="Harmful DCbugs beyond the seven benchmarks (paper §7.2)",
        headers=["BugID", "Workload", "Symptom", "Correct run?",
                 "Harmful reports", "Racing variable"],
        rows=rows,
    )


def test_beyond_benchmarks(benchmark, save_table):
    table = run_once(benchmark, beyond_benchmarks)
    save_table(table)

    for row in table.rows:
        assert row[3] == "yes", "monitored run must be correct"
        assert row[4] >= 1, f"{row[0]}: extra bug not confirmed harmful"
