"""Table 8: unselective (full) memory tracing — the alternative design.

Paper shape: full tracing inflates traces by an order of magnitude or
more, and trace analysis (the per-vertex bit-set algorithm) runs out of
memory on the four largest benchmarks, while HB-4539 and the two
ZooKeeper benchmarks still complete.
"""

from conftest import run_once

from repro.bench import table8_full_tracing

PAPER_OOM = {"CA-1011", "HB-4729", "MR-3274", "MR-4637"}
PAPER_FITS = {"HB-4539", "ZK-1144", "ZK-1270"}


def test_table8(benchmark, save_table):
    table = run_once(benchmark, table8_full_tracing)
    save_table(table)

    rows = {row[0]: row for row in table.rows}
    for bug_id in PAPER_OOM:
        assert rows[bug_id][4] == "Out of Memory", f"{bug_id} should OOM"
    for bug_id in PAPER_FITS:
        assert rows[bug_id][4] != "Out of Memory", f"{bug_id} should fit"

    # Trace-size blowup of at least ~10x somewhere (paper: up to 40x).
    blowups = [float(row[2].rstrip("x")) for row in table.rows]
    assert max(blowups) >= 10
