"""Table 7: breakdown of trace records by type.

Paper shape: memory accesses dominate every trace; MapReduce benchmarks
carry the most event/thread records (heavy event-driven computation);
the Cassandra and ZooKeeper workloads have no app-level event records of
their RPC kind (they are socket systems) and the MR workloads have no
socket records.
"""

from conftest import run_once

from repro.bench import table7_trace_breakdown


def _split_rpc_socket(cell):
    rpc, socket = cell.split("/")
    return int(rpc.strip()), int(socket.strip())


def test_table7(benchmark, save_table):
    table = run_once(benchmark, table7_trace_breakdown)
    save_table(table)

    rows = {row[0]: row for row in table.rows}
    for bug_id, row in rows.items():
        total, mem = row[1], row[2]
        assert mem > 0
        assert mem >= total * 0.1, f"{bug_id}: mem records unexpectedly rare"
        parts = sum(
            [row[2], *(_split_rpc_socket(row[3])), row[4], row[5], row[6], row[7]]
        )
        assert parts == total, f"{bug_id}: categories do not add up"

    # MapReduce uses RPC, not sockets; ZooKeeper/Cassandra the reverse.
    for bug_id in ("MR-3274", "MR-4637"):
        rpc, socket = _split_rpc_socket(rows[bug_id][3])
        assert rpc > 0 and socket == 0
    for bug_id in ("ZK-1144", "ZK-1270", "CA-1011"):
        rpc, socket = _split_rpc_socket(rows[bug_id][3])
        assert socket > 0 and rpc == 0
