"""Table 4: DCatch bug detection results (the headline table).

Paper shape: every benchmark's root-cause DCbug is detected from a
correct run; across all benchmarks roughly two thirds of reports are
truly harmful, with small benign and serial tails.
"""

from conftest import run_once

from repro.bench import table4_detection


def test_table4(benchmark, save_table):
    table = run_once(benchmark, table4_detection)
    save_table(table)

    body = [row for row in table.rows if row[0] != "Total"]
    total = table.row_for("Total")

    # Every benchmark detected (the paper's checkmark column).
    assert all(row[1] == "X" for row in body), "some benchmark not detected"

    # Harmful reports are a substantial fraction with benign and serial
    # tails (paper: 20 bug / 5 benign / 7 serial static; our mini
    # systems carry proportionally more benign retry-loop races).
    s_bug, s_benign, s_serial = total[2], total[3], total[4]
    assert s_bug >= 7  # at least the seven root-cause bugs
    assert s_bug > s_serial
    assert s_bug >= 0.3 * (s_bug + s_benign + s_serial)

    # Callstack counts never undercount static counts.
    c_bug, c_benign, c_serial = total[5], total[6], total[7]
    assert c_bug >= s_bug
    assert c_bug + c_benign + c_serial >= s_bug + s_benign + s_serial
