"""Ablation: trigger placement analysis vs naive alternatives.

Paper Section 7.2: "the naive approach that inserts request just before
the racing heap accesses failed to confirm 23 DCatch bug reports to be
true races, out of the total 35", and Section 5.1 dismisses plain sleep
injection.  This bench measures all three on the seven root-cause bugs:

* **smart** — the full placement analysis + controller (the paper's
  DCatch);
* **naive-gates** — controller gates placed directly on the racing
  accesses, no placement rules (the paper's failed strawman);
* **sleep** — uncoordinated sleep injection.
"""

from conftest import run_once

from repro.bench import CACHE, TableResult, all_bug_ids
from repro.bench.runner import CACHE as cache
from repro.detect import Verdict
from repro.detect.report import BugReport
from repro.systems import workload_by_id
from repro.trigger import NaiveSleepTrigger, PlacementAnalyzer, TriggerModule

EXPECTED_VARIABLE = {
    "CA-1011": "tokens",
    "HB-4539": "regions_in_transition",
    "HB-4729": "unassigned_cache",
    "MR-3274": "tasks",
    "MR-4637": "jobs",
    "ZK-1144": "accepted_epoch",
    "ZK-1270": "votes",
}


def _root_report(result, bug_id):
    for outcome in result.outcomes:
        if (
            outcome.verdict is Verdict.HARMFUL
            and EXPECTED_VARIABLE[bug_id] in outcome.report.representative.variable
        ):
            return outcome.report
    return None


def _fresh_copy(report):
    return BugReport(report_id=report.report_id, candidates=list(report.candidates))


def placement_ablation() -> TableResult:
    rows = []
    smart_total = naive_total = sleep_total = 0
    for bug_id in all_bug_ids():
        result = cache.pipeline(bug_id, trigger=True)
        report = _root_report(result, bug_id)
        workload = workload_by_id(bug_id)
        smart = report is not None
        naive = sleep = False
        if report is not None:
            naive_placement = PlacementAnalyzer(
                result.trace, result.detection.graph, smart=False
            )
            module = TriggerModule(workload.factory(), seeds=(0, 1))
            outcome = module.validate_report(
                _fresh_copy(report), naive_placement, max_candidates=2
            )
            naive = outcome is not None and outcome.verdict is Verdict.HARMFUL

            sleeper = NaiveSleepTrigger(
                workload.factory(), delays=(10, 50), seeds=(0,)
            )
            sleep_outcome = sleeper.validate(_fresh_copy(report))
            sleep = sleep_outcome.verdict is Verdict.HARMFUL
        smart_total += smart
        naive_total += naive
        sleep_total += sleep
        rows.append(
            [
                bug_id,
                "confirmed" if smart else "-",
                "confirmed" if naive else "missed",
                "confirmed" if sleep else "missed",
            ]
        )
    rows.append(
        ["Total", f"{smart_total}/7", f"{naive_total}/7", f"{sleep_total}/7"]
    )
    return TableResult(
        table_id="Ablation P",
        title="Trigger placement analysis vs naive gate placement vs "
        "sleep injection (root-cause bugs confirmed harmful)",
        headers=["BugID", "DCatch placement", "Naive gates", "Sleep injection"],
        rows=rows,
        notes=["paper §7.2: naive placement failed 23 of 35 true races"],
    )


def test_placement_ablation(benchmark, save_table):
    table = run_once(benchmark, placement_ablation)
    save_table(table)

    total = table.row_for("Total")
    smart = int(total[1].split("/")[0])
    naive = int(total[2].split("/")[0])
    sleep = int(total[3].split("/")[0])
    assert smart == 7, "DCatch placement must confirm every root bug"
    assert naive < smart, "naive gate placement should miss some bugs"
    assert sleep < smart, "sleep injection should miss some bugs"
