"""Ablation: reachability engine designs.

The paper (Section 3.2.2) rejects per-pair vector-timestamp comparison
("too slow ... a huge number of dimensions") for bit-set reachability.
We additionally ablate our segment-position compression against the
paper's per-vertex algorithm.  The bench measures all-pairs query cost
on one benchmark trace for:

* **bitset+compress** — our production engine;
* **bitset (paper)** — bit sets for every vertex, memory accesses
  included;
* **vector clocks** — one dimension per segment;
* **naive DFS** — memoized reference.
"""

import itertools
import time

from conftest import run_once

from repro.bench import CACHE, TableResult
from repro.hb import HBGraph, NaiveReachability, VectorClockEngine

BUG_ID = "ZK-1270"


def _sample_pairs(trace, stride):
    records = trace.records[::stride]
    return list(itertools.combinations(records, 2))


def engine_ablation() -> TableResult:
    # Use the *full* (unselective) trace: big enough that engine costs
    # are measurable (the selective traces answer in microseconds).
    trace = CACHE.full_tracing(BUG_ID).trace
    pairs = _sample_pairs(trace, stride=max(1, len(trace) // 60))

    engines = {}
    started = time.perf_counter()
    compressed = HBGraph(trace)
    engines["bitset+compress"] = (compressed, time.perf_counter() - started)

    started = time.perf_counter()
    uncompressed = HBGraph(trace, compress_mem=False)
    engines["bitset (paper)"] = (uncompressed, time.perf_counter() - started)

    started = time.perf_counter()
    vc = VectorClockEngine(compressed)
    engines["vector clocks"] = (vc, time.perf_counter() - started)

    started = time.perf_counter()
    naive = NaiveReachability(compressed)
    engines["naive DFS"] = (naive, time.perf_counter() - started)

    reference = {}
    rows = []
    for name, (engine, build_seconds) in engines.items():
        started = time.perf_counter()
        answers = [engine.happens_before(a, b) for a, b in pairs]
        query_seconds = time.perf_counter() - started
        reference[name] = answers
        backbone = (
            len(engine.backbone) if isinstance(engine, HBGraph) else
            len(compressed.backbone)
        )
        dims = vc.dimensions if engine is vc else "-"
        rows.append(
            [name, backbone, dims, build_seconds, query_seconds, len(pairs)]
        )

    # All engines agree on every sampled pair.
    baseline = reference["bitset+compress"]
    agree = all(ans == baseline for ans in reference.values())
    notes = [f"engines agree on all {len(pairs)} sampled pairs: {agree}"]
    return TableResult(
        table_id="Ablation E",
        title=f"Reachability engine cost on {BUG_ID} (full trace)",
        headers=["Engine", "Vertices", "VC dims", "Build(s)", "Query(s)",
                 "Pairs"],
        rows=rows,
        notes=notes,
    )


def test_engine_ablation(benchmark, save_table):
    table = run_once(benchmark, engine_ablation)
    save_table(table)

    assert any("agree on all" in n and "True" in n for n in table.notes)
    by_engine = {row[0]: row for row in table.rows}
    # Compression shrinks the vertex set.
    assert by_engine["bitset+compress"][1] < by_engine["bitset (paper)"][1]
