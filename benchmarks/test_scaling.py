"""Scaling: trace-analysis cost vs trace size.

The paper (Section 7.3) observes that trace analysis "scales well,
roughly linearly, with the trace size".  This bench grows a synthetic
communication-heavy workload, measures analysis time per trace record,
and asserts the per-record cost stays bounded (no quadratic blowup)
while the reachability matrix stays within budget.
"""

import time

from conftest import run_once

from repro.bench import TableResult
from repro.detect import detect_races
from repro.runtime import Cluster, sleep
from repro.trace import FullScope, Tracer


def _build_workload(cluster, rounds):
    a = cluster.add_node("a")
    b = cluster.add_node("b")
    state = b.shared_dict("state")
    b.rpc_server.register("update", lambda k, v: state.put(k, v))
    b.rpc_server.register("lookup", lambda k: state.get(k))
    q = b.event_queue("apply", consumers=1)
    q.register("apply", lambda ev: state.put(ev.payload["k"], ev.payload["v"]))
    b.on_message("note", lambda payload, src: q.post("apply", payload))

    def driver():
        for i in range(rounds):
            a.rpc("b").update(f"k{i % 7}", i)
            a.send("b", "note", {"k": f"n{i % 5}", "v": i})
            a.rpc("b").lookup(f"k{i % 7}")
            if i % 4 == 0:
                sleep(1)

    a.spawn(driver, name="driver")


def _measure(rounds):
    cluster = Cluster(seed=1, max_steps=400_000)
    tracer = Tracer(scope=FullScope()).bind(cluster)
    _build_workload(cluster, rounds)
    result = cluster.run()
    assert not result.harmful
    started = time.perf_counter()
    detection = detect_races(tracer.trace)
    elapsed = time.perf_counter() - started
    return len(tracer.trace), elapsed, len(detection.candidates)


def scaling_table() -> TableResult:
    rows = []
    for rounds in (20, 40, 80, 160):
        records, seconds, candidates = _measure(rounds)
        rows.append(
            [
                rounds,
                records,
                seconds,
                (seconds / records) * 1e6,  # microseconds per record
                candidates,
            ]
        )
    return TableResult(
        table_id="Scaling",
        title="Trace-analysis cost vs trace size (paper §7.3: roughly "
        "linear)",
        headers=["Rounds", "Records", "Analysis(s)", "us/record",
                 "Candidates"],
        rows=rows,
    )


def test_analysis_scales_roughly_linearly(benchmark, save_table):
    table = run_once(benchmark, scaling_table)
    save_table(table)

    per_record = table.column("us/record")
    # Largest trace's per-record cost stays within a small factor of the
    # smallest trace's — linear-ish, not quadratic.
    assert per_record[-1] <= per_record[0] * 12, per_record
    records = table.column("Records")
    assert records[-1] > records[0] * 4  # the sweep actually grew
