"""Figure 1/2: the Hadoop MR-3274 hang scenario, end to end.

Paper shape: hang iff the Cancel (#3) is delivered before GetTask (#2);
no failure otherwise.  The triggering module must reproduce both sides.
"""

from conftest import run_once

from repro.bench import figure1_mr_hang


def test_figure1(benchmark, save_table):
    table = run_once(benchmark, figure1_mr_hang)
    save_table(table)

    verdicts = {row[0]: row[4] for row in table.rows}
    assert "harmful" in verdicts.values(), "the Figure 1 hang was not triggered"
    # The register/get pair (Figure 2's put vs get) is tolerated by the
    # retry loop — benign, exactly as the paper explains.
    assert "benign" in verdicts.values()
    assert any("hang" in note for note in table.notes)
