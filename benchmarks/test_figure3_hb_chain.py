"""Figure 3: the HBase W => R chain needs every HB rule family.

Paper shape: the write (regionsToOpen bookkeeping in the split path) is
ordered before the watcher handler's read only through the *combination*
of thread-fork, RPC, event-queue and ZooKeeper-push rules; removing any
one of them makes the pair (wrongly) concurrent.
"""

from conftest import run_once

from repro.bench import figure3_hb_chain


def test_figure3(benchmark, save_table):
    table = run_once(benchmark, figure3_hb_chain)
    save_table(table)

    status = {row[0]: row[1] for row in table.rows}
    assert status["full model"] == "ordered"
    for family in ("rpc", "push", "event"):
        assert status[f"without {family}"] == "CONCURRENT", (
            f"rule family {family} was not load-bearing for the chain"
        )
