"""Table 9: HB-rule ablation — every rule family earns its keep.

Paper shape: dropping event / RPC / socket / push records introduces
false positives (missed orderings) and false negatives (handler segments
collapsing into whole-thread program order) in the benchmarks that use
the corresponding mechanism.
"""

from conftest import run_once

from repro.bench import table9_hb_ablation


def _changed(cell):
    return cell != "-"


def test_table9(benchmark, save_table):
    table = run_once(benchmark, table9_hb_ablation)
    save_table(table)

    rows = {row[0]: row for row in table.rows}
    headers = table.headers  # BugID, Event, RPC, Socket, Push

    # RPC ablation hurts the RPC systems (HBase, MapReduce).
    rpc_idx = headers.index("RPC")
    assert any(
        _changed(rows[b][rpc_idx])
        for b in ("HB-4539", "HB-4729", "MR-3274", "MR-4637")
    )
    # Push ablation hurts the ZooKeeper-coordinated system (HBase).
    push_idx = headers.index("Push")
    assert any(_changed(rows[b][push_idx]) for b in ("HB-4539", "HB-4729"))
    # Event ablation hurts event-heavy benchmarks.
    event_idx = headers.index("Event")
    assert any(_changed(rows[b][event_idx]) for b in rows)
    # Socket ablation hurts a socket system.
    socket_idx = headers.index("Socket")
    assert any(
        _changed(rows[b][socket_idx])
        for b in ("CA-1011", "ZK-1144", "ZK-1270")
    )

    # Ablations introduce false positives and/or false negatives, never
    # silently nothing everywhere.
    assert any(
        _changed(rows[b][i]) for b in rows for i in range(1, len(headers))
    )
