"""Table 5: candidate counts through the pruning stages.

Paper shape: static pruning (SP) cuts trace-analysis (TA) candidates
substantially for the larger benchmarks, and the loop-based
synchronization analysis (LP) prunes further even after SP.
"""

from conftest import run_once

from repro.bench import table5_pruning


def test_table5(benchmark, save_table):
    table = run_once(benchmark, table5_pruning)
    save_table(table)

    monotone = True
    sp_pruned_somewhere = False
    lp_pruned_somewhere = False
    for row in table.rows:
        bug_id, s_ta, s_sp, s_lp, c_ta, c_sp, c_lp = row
        monotone &= s_ta >= s_sp >= s_lp and c_ta >= c_sp >= c_lp
        sp_pruned_somewhere |= s_sp < s_ta
        lp_pruned_somewhere |= s_lp < s_sp
        assert s_lp >= 1, f"{bug_id}: everything pruned, bug lost"
    assert monotone, "pruning stages must only remove candidates"
    assert sp_pruned_somewhere, "static pruning had no effect anywhere"
    assert lp_pruned_somewhere, "loop-based analysis had no effect anywhere"
