"""Table 3: benchmark bugs and applications."""

from conftest import run_once

from repro.bench import table3_benchmarks

PAPER_ROWS = {
    "CA-1011": ("startup", "Data backup failure", "DE", "AV"),
    "HB-4539": ("split table & alter table", "System Master Crash", "DE", "OV"),
    "HB-4729": ("enable table & expire server", "System Master Crash", "DE", "AV"),
    "MR-3274": ("startup + wordcount", "Hang", "DH", "OV"),
    "MR-4637": ("startup + wordcount", "Job Master Crash", "LE", "OV"),
    "ZK-1144": ("startup", "Service unavailable", "LH", "OV"),
    "ZK-1270": ("startup", "Service unavailable", "LH", "OV"),
}


def test_table3(benchmark, save_table):
    table = run_once(benchmark, table3_benchmarks)
    save_table(table)

    assert len(table.rows) == 7
    for row in table.rows:
        bug_id, loc, workload, symptom, error, root = row
        expected = PAPER_ROWS[bug_id]
        assert (workload, symptom, error, root) == expected
        assert int(loc.split()[0]) > 50  # a real mini system, not a stub
