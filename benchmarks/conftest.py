"""Shared helpers for the evaluation benchmark suite.

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark regenerates one table or figure of the paper, asserts its
qualitative shape, prints it, and saves it under ``benchmarks/out/``.
Pipeline artifacts are cached per process (see ``repro.bench.runner``),
so the suite runs each workload's pipeline once.
"""

import os

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


@pytest.fixture(scope="session")
def out_dir():
    os.makedirs(OUT_DIR, exist_ok=True)
    return OUT_DIR


@pytest.fixture
def save_table(out_dir):
    def _save(table):
        text = table.render()
        name = table.table_id.lower().replace(" ", "").replace("/", "-")
        path = os.path.join(out_dir, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(text + "\n")
        print()
        print(text)
        return text

    return _save


def run_once(benchmark, fn):
    """Run a table generator exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
