"""Table 1: concurrency & communication mechanisms per system."""

from conftest import run_once

from repro.bench import table1_mechanisms


def test_table1(benchmark, save_table):
    table = run_once(benchmark, table1_mechanisms)
    save_table(table)

    by_system = {row[0]: row for row in table.rows}
    # Paper Table 1 shape:
    # Cassandra:  no RPC, sockets, threads, events
    assert by_system["Cassandra"][1] == "-"
    assert by_system["Cassandra"][2] == "X"
    # HBase: RPC, no app-level sockets, custom (ZooKeeper push)
    assert by_system["HBase"][1] == "X"
    assert by_system["HBase"][2] == "-"
    assert by_system["HBase"][3] == "X"
    # MapReduce: RPC, no sockets, custom (getTask pull loop)
    assert by_system["Hadoop MapReduce"][1] == "X"
    assert by_system["Hadoop MapReduce"][2] == "-"
    # ZooKeeper: no RPC, sockets
    assert by_system["ZooKeeper"][1] == "-"
    assert by_system["ZooKeeper"][2] == "X"
    # Everyone uses threads and events.
    for row in table.rows:
        assert row[4] == "X"
        assert row[5] == "X"
