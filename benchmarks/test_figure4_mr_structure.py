"""Figure 4: mini-MapReduce's concurrency structure.

Paper shape: the AM hosts event queues with dedicated handler threads;
RPC threads serve NM containers; regular threads (client main, container
threads) round out the picture.
"""

from conftest import run_once

from repro.bench import figure4_mr_structure


def test_figure4(benchmark, save_table):
    table = run_once(benchmark, figure4_mr_structure)
    save_table(table)

    rows = {row[0]: row for row in table.rows}
    assert rows["threads"][1] >= 6  # client, containers, rpc, dispatchers
    assert rows["event queues"][1] >= 1
    assert "dispatcher" in rows["event queues"][2]
    assert rows["RPC methods"][1] >= 4
    assert "get_task" in rows["RPC methods"][2]
